// Package serve is the HTTP layer of the reproduction: it exposes the
// artifact registry of internal/repro as a long-lived daemon
// (cmd/nanoreprod) instead of a one-shot CLI. The routing is thin — the
// substance is the production behavior around it:
//
//   - Strong ETags derived from artifact ID + the compute-cache key, so
//     If-None-Match revalidation answers 304 without touching the models,
//     and an ETag match guarantees byte-identical data (the same guarantee
//     the compute cache gives in-process).
//   - A weighted FIFO admission gate: every request costs compute units
//     proportional to its mesh size, cheap requests run concurrently up to
//     the configured capacity, and an expensive mesh-n=255 refinement
//     drains the gate and runs alone instead of starving the pool.
//   - Per-request timeouts that cut the handler loose (503/504) while the
//     abandoned compute still completes into the cache, so a retry is a
//     hit rather than a second solve. The gate units stay held until the
//     model work actually finishes — the gate bounds real solver
//     concurrency, not merely live handlers.
//   - Prometheus metrics (internal/obs) for latency, admission, per-
//     artifact compute time, and the compute cache's hit/miss/bypass
//     counters, plus /debug/pprof.
//
// Handlers produce bytes identical to cmd/nanorepro for the same options:
// both sit on repro.ComputeCached and the internal/render encoders.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/pprof"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"time"

	"nanometer/internal/experiments"
	jobsvc "nanometer/internal/jobs"
	"nanometer/internal/render"
	"nanometer/internal/repro"
	"nanometer/internal/result"
	"nanometer/internal/runner"
	"nanometer/internal/store"
	"nanometer/internal/trace"
)

// Config parameterizes a Server. The zero value serves the full registry
// with sane production defaults.
type Config struct {
	// Artifacts is the registry to serve; nil selects repro.Artifacts().
	Artifacts []repro.Artifact
	// GateUnits is the admission-gate capacity in compute units (one unit
	// ≈ one default-mesh artifact compute). ≤ 0 selects
	// max(8, 4·GOMAXPROCS).
	GateUnits int64
	// Timeout is the per-request compute budget (admission wait included).
	// ≤ 0 selects 30 s.
	Timeout time.Duration
	// Jobs is the worker count for full-report requests; ≤ 0 selects
	// GOMAXPROCS.
	Jobs int
	// Store, when non-nil, is the disk-backed result store installed as
	// the compute cache's second level (process-wide via
	// repro.SetResultStore) and exported on /metrics. Replicas sharing a
	// store directory warm each other through it.
	Store *store.Store
	// Peers is the replica member list for shared-compute mode
	// (host:port each, the full cluster including this replica as the
	// others address it). Empty disables peer consultation.
	Peers []string
	// Self is this replica's own entry in Peers; keys it owns are solved
	// locally, keys owned by another member are fetched from that peer
	// (falling through to a local solve on any failure).
	Self string
	// PeerTimeout bounds one peer fetch; ≤ 0 selects DefaultPeerTimeout.
	PeerTimeout time.Duration
	// JobWorkers bounds concurrently running trace-simulation jobs; ≤ 0
	// selects 2. Queue depth and retention use the jobs package defaults.
	JobWorkers int
}

// Server routes HTTP requests onto the artifact registry. Create with New,
// mount via Handler.
type Server struct {
	byID    map[string]repro.Artifact
	order   []repro.Artifact
	gate    *gate
	flights *flightGroup
	peers   *peerSet
	store   *store.Store
	jobq    *jobsvc.Queue
	timeout time.Duration
	jobs    int
	met     *metrics
	mux     *http.ServeMux

	// scenarioNames is the admitted metrics-label set for scenario names
	// (bounded; see scenarioLabel).
	labelMu       sync.Mutex
	scenarioNames map[string]bool // guarded by labelMu
}

// New builds a Server from cfg.
func New(cfg Config) *Server {
	arts := cfg.Artifacts
	if arts == nil {
		arts = repro.Artifacts()
	}
	units := cfg.GateUnits
	if units <= 0 {
		units = int64(4 * runtime.GOMAXPROCS(0))
		if units < 8 {
			units = 8
		}
	}
	timeout := cfg.Timeout
	if timeout <= 0 {
		timeout = 30 * time.Second
	}
	jobs := cfg.Jobs
	if jobs <= 0 {
		jobs = runtime.GOMAXPROCS(0)
	}
	s := &Server{
		byID:          make(map[string]repro.Artifact, len(arts)),
		order:         arts,
		gate:          newGate(units),
		flights:       newFlightGroup(),
		timeout:       timeout,
		jobs:          jobs,
		scenarioNames: make(map[string]bool),
	}
	for _, a := range arts {
		s.byID[a.ID] = a
	}
	if cfg.Store != nil {
		// The compute cache (and so the store hook) is process-wide;
		// installing it here keeps single-binary wiring trivial, and
		// in-process multi-replica setups (loadgen -replicas) pass the
		// same handle so the install is idempotent.
		s.store = cfg.Store
		repro.SetResultStore(cfg.Store)
	}
	if len(cfg.Peers) > 0 {
		s.peers = newPeerSet(cfg.Self, cfg.Peers, cfg.PeerTimeout)
	}
	// The job queue shares the admission gate with one-shot requests: a
	// running simulation holds weight like a solve does, and a canceled
	// job hands its units back as soon as the simulator observes the
	// cancel. The disk store (when configured) doubles as the job result
	// store, so a resubmitted trace is a store hit across restarts too.
	jcfg := jobsvc.Config{Workers: cfg.JobWorkers, Admit: func(ctx context.Context, tr *trace.Trace) (func(), error) {
		return s.gate.Acquire(ctx, jobWeight(tr))
	}}
	if cfg.Store != nil {
		jcfg.Store = cfg.Store
	}
	s.jobq = jobsvc.New(jcfg)
	s.met = newMetrics(s.gate, s.store, s.jobq)
	s.jobq.OnFinish = func(state jobsvc.State, cached bool) {
		s.met.jobsFinished.With(stateLabel(state)).Inc()
		if cached {
			s.met.jobsCached.Inc()
		}
	}
	s.mux = http.NewServeMux()
	s.routes()
	return s
}

// Close cancels every trace job and waits for the workers to drain. Call
// after the HTTP server has shut down.
func (s *Server) Close() { s.jobq.Close() }

func (s *Server) routes() {
	s.mux.HandleFunc("GET /api/v1/artifacts", s.handleIndex)
	s.mux.HandleFunc("GET /api/v1/artifacts/{id}", s.handleArtifact)
	s.mux.HandleFunc("GET /api/v1/report", s.handleReport)
	s.mux.HandleFunc("POST /api/v1/scenarios", s.handleScenarios)
	// The trace-simulation job service: long computes live behind a job
	// handle instead of a hanging request.
	s.mux.HandleFunc("POST /api/v1/jobs", s.handleJobSubmit)
	s.mux.HandleFunc("GET /api/v1/jobs", s.handleJobIndex)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}", s.handleJobStatus)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/result", s.handleJobResult)
	s.mux.HandleFunc("GET /api/v1/jobs/{id}/stream", s.handleJobStream)
	s.mux.HandleFunc("DELETE /api/v1/jobs/{id}", s.handleJobCancel)
	// The replica-to-replica result exchange: bare typed-result JSON, no
	// encoding options, and — the loop-prevention invariant — served
	// strictly from local compute (never re-forwarded to another peer).
	s.mux.HandleFunc("GET /api/v1/internal/result/{id}", s.handleInternalResult)
	s.mux.HandleFunc("POST /api/v1/cache/flush", s.handleFlush)
	s.mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("GET /metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		s.met.reg.WritePrometheus(w)
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}

// Handler returns the instrumented root handler (mount on an http.Server).
func (s *Server) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		s.met.inFlight.Inc()
		defer s.met.inFlight.Dec()
		rec := &statusRecorder{ResponseWriter: w, code: http.StatusOK}
		s.mux.ServeHTTP(rec, r)
		s.met.requests.With(codeLabel(rec.code)).Inc()
		s.met.duration.Observe(time.Since(start).Seconds())
	})
}

type statusRecorder struct {
	http.ResponseWriter
	code int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.code = code
	r.ResponseWriter.WriteHeader(code)
}

// apiError answers a failed API request with a JSON body (the API speaks
// JSON even when the requested representation was text or CSV). Validator
// headers are scrubbed defensively: an error body must never ship a strong
// ETag or caching policy, or a client's If-None-Match revalidation could
// 304 an error it never successfully fetched.
func apiError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Del("ETag")
	w.Header().Del("Cache-Control")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(map[string]string{"error": fmt.Sprintf(format, args...)})
}

// requestOptions parses and validates the query parameters shared by the
// artifact and report endpoints. mesh-n arrives from untrusted clients and
// goes through the same ValidateMeshN the CLI flag uses.
func requestOptions(r *http.Request) (opts repro.Options, format string, err error) {
	q := r.URL.Query()
	format = q.Get("format")
	if format == "" {
		format = "text"
	}
	switch format {
	case "text", "json", "csv":
	default:
		return opts, "", fmt.Errorf("unknown format %q (want text, json, or csv)", format)
	}
	if v := q.Get("mesh-n"); v != "" {
		n, perr := strconv.Atoi(v)
		if perr != nil {
			return opts, "", fmt.Errorf("mesh-n %q is not an integer", v)
		}
		if verr := repro.ValidateMeshN(n); verr != nil {
			return opts, "", verr
		}
		opts.MeshN = n
	}
	// Encode-only toggles of the text format (same semantics as the CLI's
	// -v and -plot).
	opts.Verbose = boolParam(q.Get("verbose"))
	opts.Plot = boolParam(q.Get("plot"))
	if format != "text" && (opts.Verbose || opts.Plot) {
		return opts, "", fmt.Errorf("verbose and plot only apply to format=text")
	}
	return opts, format, nil
}

func boolParam(v string) bool { return v == "1" || v == "true" }

// etagFor derives the strong ETag of one artifact representation: the
// artifact ID, the compute-cache key (everything that can change the
// computed data), and the encoding discriminators (everything that can
// change its serialization). Compute is deterministic, so equal ETags mean
// byte-identical bodies — which is also why the ETag can be issued without
// encoding anything.
func etagFor(id string, opts repro.Options, format string) string {
	enc := format
	if opts.Verbose {
		enc += "v"
	}
	if opts.Plot {
		enc += "p"
	}
	return `"` + id + "-" + opts.CacheKey() + "-" + enc + `"`
}

// etagMatches implements the If-None-Match comparison for strong ETags.
func etagMatches(header, etag string) bool {
	for _, cand := range strings.Split(header, ",") {
		cand = strings.TrimSpace(cand)
		if cand == "*" || cand == etag {
			return true
		}
	}
	return false
}

// contentType maps a format to its media type.
func contentType(format string) string {
	switch format {
	case "json":
		return "application/json"
	case "csv":
		return "text/csv; charset=utf-8"
	default:
		return "text/plain; charset=utf-8"
	}
}

// weight prices a request in gate units: the default 41-node mesh (and
// everything cheaper) costs 1, larger meshes cost proportionally to their
// node count — mesh-n=255 weighs ~39 units, so it drains the gate and runs
// exclusively rather than stacking up alongside a burst of cheap requests.
func weight(meshN int) int64 {
	if meshN <= 0 {
		meshN = experiments.DefaultMeshN
	}
	d := int64(experiments.DefaultMeshN) * int64(experiments.DefaultMeshN)
	n := int64(meshN) * int64(meshN)
	return (n + d - 1) / d
}

// admit acquires wt gate units under the request deadline. The returned
// release must be handed to exactly one finisher (a compute goroutine);
// a nil release means admission failed and the response was written.
func (s *Server) admit(ctx context.Context, w http.ResponseWriter, wt int64) func() {
	release, err := s.gate.Acquire(ctx, wt)
	if err != nil {
		s.met.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		apiError(w, http.StatusServiceUnavailable, "admission gate wait canceled: %v", err)
		return nil
	}
	return release
}

// finish waits for a background produce goroutine under the deadline. On
// timeout the handler answers 504 and walks away; the goroutine keeps
// running to completion (its result lands in the compute cache, so the
// client's retry is a hit) and releases its gate units when done.
func await[T any](ctx context.Context, s *Server, w http.ResponseWriter, ch <-chan T) (T, bool) {
	select {
	case v := <-ch:
		return v, true
	case <-ctx.Done():
		s.met.timeouts.Inc()
		var zero T
		apiError(w, http.StatusGatewayTimeout, "request deadline exceeded: %v", ctx.Err())
		return zero, false
	}
}

// handleIndex lists the registry.
func (s *Server) handleIndex(w http.ResponseWriter, r *http.Request) {
	type entry struct {
		ID    string `json:"id"`
		Title string `json:"title"`
		URL   string `json:"url"`
	}
	index := struct {
		Artifacts []entry  `json:"artifacts"`
		Formats   []string `json:"formats"`
	}{Formats: []string{"text", "json", "csv"}}
	for _, a := range s.order {
		index.Artifacts = append(index.Artifacts, entry{a.ID, a.Title, "/api/v1/artifacts/" + a.ID})
	}
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(index)
}

// handleArtifact serves one artifact in the requested representation.
func (s *Server) handleArtifact(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	a, ok := s.byID[id]
	if !ok {
		apiError(w, http.StatusNotFound, "unknown artifact %q (GET /api/v1/artifacts for the index)", id)
		return
	}
	s.met.artifactTotal.With(artifactLabel(a)).Inc()
	opts, format, err := requestOptions(r)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	etag := etagFor(id, opts, format)
	if inm := r.Header.Get("If-None-Match"); inm != "" && etagMatches(inm, etag) {
		s.met.notModified.Inc()
		w.Header().Set("ETag", etag)
		w.Header().Set("Cache-Control", "no-cache") // revalidate via ETag; 304 is cheap
		w.WriteHeader(http.StatusNotModified)
		return
	}

	res, ok := s.produceResult(w, r, a, opts, true)
	if !ok {
		return
	}
	body, err := encodeOne(res, opts, format)
	if err != nil {
		apiError(w, http.StatusInternalServerError, "encoding %s: %v", id, err)
		return
	}
	// The validator headers ride only on the success path: a 504/500 must
	// never carry a strong ETag, or a client that cached the error body
	// could have it revalidated into a 304 forever.
	w.Header().Set("ETag", etag)
	w.Header().Set("Cache-Control", "no-cache")
	writeBody(w, format, body)
}

// produceResult runs the singleflight-collapsed compute of one artifact
// and either returns its shared result or writes the failure response
// (503/504/500) itself. The first concurrent request for an (artifact,
// compute key) pair becomes the leader: it alone acquires gate weight and
// computes (consulting peers when allowed). Followers wait on the leader's
// flight under their own deadline without touching the gate — N identical
// concurrent requests cost one admission, not N.
func (s *Server) produceResult(w http.ResponseWriter, r *http.Request, a repro.Artifact, opts repro.Options, allowPeers bool) (*result.Result, bool) {
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	key := a.ID + "\x00" + opts.CacheKey()
	f, leader := s.flights.join(key)
	if !leader {
		s.met.singleflightShared.Inc()
		select {
		case <-f.done:
		case <-ctx.Done():
			s.met.timeouts.Inc()
			apiError(w, http.StatusGatewayTimeout, "request deadline exceeded: %v", ctx.Err())
			return nil, false
		}
		if f.err != nil {
			if f.rejected {
				s.met.rejected.Inc()
				w.Header().Set("Retry-After", "1")
				apiError(w, http.StatusServiceUnavailable, "admission gate wait canceled: %v", f.err)
			} else {
				apiError(w, http.StatusInternalServerError, "computing %s: %v", a.ID, f.err)
			}
			return nil, false
		}
		return f.res, true
	}

	release, aerr := s.gate.Acquire(ctx, weight(opts.MeshN))
	if aerr != nil {
		// Propagate the rejection to any followers before answering, so
		// they 503 promptly instead of waiting out their deadlines.
		s.flights.finish(key, f, nil, aerr, true)
		s.met.rejected.Inc()
		w.Header().Set("Retry-After", "1")
		apiError(w, http.StatusServiceUnavailable, "admission gate wait canceled: %v", aerr)
		return nil, false
	}
	type outcome struct {
		res *result.Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer release()
		start := time.Now()
		res, err := s.computeArtifact(ctx, a, opts, allowPeers)
		s.met.computeSeconds.With(artifactLabel(a)).Add(time.Since(start).Seconds())
		s.flights.finish(key, f, res, err, false)
		ch <- outcome{res, err}
	}()
	out, ok := await(ctx, s, w, ch)
	if !ok {
		return nil, false
	}
	if out.err != nil {
		apiError(w, http.StatusInternalServerError, "computing %s: %v", a.ID, out.err)
		return nil, false
	}
	return out.res, true
}

// computeArtifact is the leader's compute: local caches (memory, then the
// shared store) answer first; a key owned by a remote peer is fetched from
// that peer; anything else — including every flavor of peer failure —
// solves locally. The local solve is the always-available base case, so
// peer mode can only add capacity, never subtract availability.
func (s *Server) computeArtifact(ctx context.Context, a repro.Artifact, opts repro.Options, allowPeers bool) (*result.Result, error) {
	if s.peers != nil && allowPeers {
		probe := opts
		probe.CacheOnly = true
		if res, err := a.ComputeCached(probe); err == nil {
			return res, nil
		}
		if owner, remote := s.peers.owner(a.ID + "\x00" + opts.CacheKey()); remote {
			res, err := s.peers.fetch(ctx, owner, a.ID, opts)
			if err == nil {
				s.met.peerHits.Inc()
				return res, nil
			}
			s.met.peerFallthrough.Inc()
		}
	}
	return a.ComputeCached(opts)
}

// handleInternalResult serves one artifact's bare typed result as JSON for
// a sibling replica. It reuses the full admission + singleflight machinery
// but never consults peers itself (allowPeers=false): a forwarded request
// terminates here, so peer topologies cannot loop no matter how the member
// lists disagree.
func (s *Server) handleInternalResult(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	a, ok := s.byID[id]
	if !ok {
		apiError(w, http.StatusNotFound, "unknown artifact %q", id)
		return
	}
	s.met.peerServes.Inc()
	var opts repro.Options
	if v := r.URL.Query().Get("mesh-n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			apiError(w, http.StatusBadRequest, "mesh-n %q is not an integer", v)
			return
		}
		if err := repro.ValidateMeshN(n); err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
		opts.MeshN = n
	}
	res, ok := s.produceResult(w, r, a, opts, false)
	if !ok {
		return
	}
	body, err := json.Marshal(res)
	if err != nil {
		apiError(w, http.StatusInternalServerError, "encoding %s: %v", id, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}

// handleReport serves the full run — the exact bytes `nanorepro
// -format=<f>` prints for the same options.
func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	opts, format, err := requestOptions(r)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	// A report computes every artifact: price it as the sum of its parts
	// (clamped to capacity inside the gate).
	release := s.admit(ctx, w, int64(len(s.order))*weight(opts.MeshN))
	if release == nil {
		return
	}
	type outcome struct {
		body []byte
		err  error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer release()
		body, err := s.encodeReport(ctx, opts, format)
		ch <- outcome{body, err}
	}()
	out, ok := await(ctx, s, w, ch)
	if !ok {
		return
	}
	if out.err != nil {
		apiError(w, http.StatusInternalServerError, "report: %v", out.err)
		return
	}
	writeBody(w, format, out.body)
}

// handleFlush drops every memoized result (ResetCache is safe under load —
// in-flight computes finish against the old generation).
func (s *Server) handleFlush(w http.ResponseWriter, _ *http.Request) {
	before := repro.ReadCacheStats().Entries
	repro.ResetCache()
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(map[string]any{"flushed": true, "entries_dropped": before})
}

// encodeOne renders a computed result exactly as the CLI would: render.Text
// for format=text, a single-artifact {"artifacts":[…]} document for json,
// and render.CSV blocks for csv.
func encodeOne(res *result.Result, opts repro.Options, format string) ([]byte, error) {
	var buf bytes.Buffer
	var err error
	switch format {
	case "json":
		err = render.JSON{Indent: "  "}.EncodeReport(&buf, &result.Report{Artifacts: []*result.Result{res}})
	case "csv":
		err = render.CSV{}.Encode(&buf, res)
	default:
		err = render.Text{Plot: opts.Plot, Verbose: opts.Verbose}.Encode(&buf, res)
	}
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// encodeReport renders the whole registry through the same pool paths the
// CLI uses, so the bytes match `nanorepro` for the same options and worker
// non-determinism stays impossible. ctx is the request's: a report whose
// client has gone away stops launching artifacts (the ones already solving
// run to completion and still land in the compute cache, exactly like the
// single-artifact path).
func (s *Server) encodeReport(ctx context.Context, opts repro.Options, format string) ([]byte, error) {
	pool := runner.Pool{Workers: s.jobs}
	var buf bytes.Buffer
	switch format {
	case "json":
		results, aggErr := repro.ComputeAllCtx(ctx, pool, s.order, opts)
		if aggErr != nil {
			return nil, aggErr
		}
		rep := &result.Report{Artifacts: results}
		if err := (render.JSON{Indent: "  "}).EncodeReport(&buf, rep); err != nil {
			return nil, err
		}
	case "csv":
		results, sinkErr := pool.RunToContext(ctx, &buf, repro.EncodeJobs(s.order, opts, render.CSV{}))
		if sinkErr != nil {
			return nil, sinkErr
		}
		if agg := runner.Errs(results); agg != nil {
			return nil, agg
		}
	default:
		results, sinkErr := pool.RunToContext(ctx, &buf, repro.Jobs(s.order, opts))
		if sinkErr != nil {
			return nil, sinkErr
		}
		if agg := runner.Errs(results); agg != nil {
			return nil, agg
		}
	}
	return buf.Bytes(), nil
}

func writeBody(w http.ResponseWriter, format string, body []byte) {
	w.Header().Set("Content-Type", contentType(format))
	w.Header().Set("Content-Length", strconv.Itoa(len(body)))
	w.Write(body)
}
