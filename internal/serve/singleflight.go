package serve

import (
	"sync"

	"nanometer/internal/result"
)

// flight is one in-progress compute of (artifact ID, compute key). The
// leader — the request that created the flight — is the only one that
// acquires gate units and runs the compute; every other request joins as a
// follower and waits on done under its own deadline. The flight outlives
// the leader's handler: a leader that times out (504) walks away while the
// compute goroutine still finishes the flight, so followers (and the
// compute cache) get the result.
type flight struct {
	done chan struct{} // closed when res/err are final

	res *result.Result
	err error
	// rejected marks an admission-gate failure (not a compute failure):
	// followers answer 503 + Retry-After like the leader did, instead of
	// misreporting a healthy artifact as a 500.
	rejected bool
}

// flightGroup deduplicates in-flight computes. The compute cache's
// once-cells already share the *result* of duplicate computes; the flight
// group is what shares their *admission cost* — N identical concurrent
// requests hold one leader's gate weight, not N× it.
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight // guarded by mu
}

func newFlightGroup() *flightGroup {
	return &flightGroup{m: make(map[string]*flight)}
}

// join returns the flight for key, creating it (leader=true) when none is
// in progress.
func (g *flightGroup) join(key string) (f *flight, leader bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	if f, ok := g.m[key]; ok {
		return f, false
	}
	f = &flight{done: make(chan struct{})}
	g.m[key] = f
	return f, true
}

// finish publishes the outcome and retires the flight. The map entry is
// removed before done is closed, so a request arriving after completion
// starts a fresh flight (whose compute is a cache hit) instead of reading
// a stale one.
func (g *flightGroup) finish(key string, f *flight, res *result.Result, err error, rejected bool) {
	f.res, f.err, f.rejected = res, err, rejected
	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
}
