package serve

import (
	"container/list"
	"context"
	"sync"
)

// gate is a weighted, FIFO admission semaphore: every request acquires a
// number of units proportional to its compute cost before touching the
// model stack, so a burst of cheap requests runs concurrently up to the
// capacity while one expensive refinement (mesh-n 255 weighs ~38 default
// requests) drains the gate, runs alone, and releases it — it can neither
// starve the pool nor be starved forever, because waiters are served
// strictly in arrival order.
type gate struct {
	cap int64

	mu  sync.Mutex
	cur int64 // guarded by mu
	// waiters holds *gateWaiter values, FIFO.
	waiters list.List // guarded by mu
}

type gateWaiter struct {
	n     int64
	ready chan struct{} // closed when the grant is made
}

func newGate(capacity int64) *gate {
	if capacity < 1 {
		capacity = 1
	}
	return &gate{cap: capacity}
}

// clamp bounds a request's weight to the gate capacity, so one request
// dearer than the whole gate still admits (exclusively) instead of
// deadlocking.
func (g *gate) clamp(n int64) int64 {
	if n < 1 {
		n = 1
	}
	if n > g.cap {
		n = g.cap
	}
	return n
}

// Acquire blocks until n units are granted or ctx is done. n is clamped to
// [1, capacity]. The returned release function gives the units back (call
// exactly once; it is nil when Acquire fails).
func (g *gate) Acquire(ctx context.Context, n int64) (release func(), err error) {
	n = g.clamp(n)
	g.mu.Lock()
	if g.waiters.Len() == 0 && g.cur+n <= g.cap {
		g.cur += n
		g.mu.Unlock()
		return func() { g.release(n) }, nil
	}
	w := &gateWaiter{n: n, ready: make(chan struct{})}
	elem := g.waiters.PushBack(w)
	g.mu.Unlock()

	select {
	case <-w.ready:
		return func() { g.release(n) }, nil
	case <-ctx.Done():
		g.mu.Lock()
		select {
		case <-w.ready:
			// The grant raced the cancellation; keep it and succeed, so
			// units are never leaked nor double-counted.
			g.mu.Unlock()
			return func() { g.release(n) }, nil
		default:
		}
		g.waiters.Remove(elem)
		// Removing a waiter at the head may unblock those behind it.
		g.notifyLocked()
		g.mu.Unlock()
		return nil, ctx.Err()
	}
}

func (g *gate) release(n int64) {
	g.mu.Lock()
	g.cur -= n
	if g.cur < 0 {
		panic("serve: gate released more than acquired")
	}
	g.notifyLocked()
	g.mu.Unlock()
}

// notifyLocked grants queued waiters in FIFO order while capacity lasts.
// The head waiter blocks everyone behind it even if they would fit —
// that's the anti-starvation guarantee for heavy requests.
func (g *gate) notifyLocked() {
	for {
		front := g.waiters.Front()
		if front == nil {
			return
		}
		w := front.Value.(*gateWaiter)
		if g.cur+w.n > g.cap {
			return
		}
		g.cur += w.n
		g.waiters.Remove(front)
		close(w.ready)
	}
}

// InFlight returns the units currently held — exported to the metrics
// layer as a gauge.
func (g *gate) InFlight() int64 {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.cur
}

// Waiting returns the queued waiter count.
func (g *gate) Waiting() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.waiters.Len()
}
