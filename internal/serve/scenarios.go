package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"nanometer/internal/repro"
	"nanometer/internal/result"
	"nanometer/internal/runner"
	"nanometer/internal/scenario"
)

// readBody reads a request body through MaxBytesReader with limit maxBytes.
// Use bodyErrStatus to map a failure to its status code.
func readBody(w http.ResponseWriter, r *http.Request, maxBytes int64) ([]byte, error) {
	return io.ReadAll(http.MaxBytesReader(w, r.Body, maxBytes))
}

// bodyErrStatus maps a body-read failure to its HTTP status: 413 only for
// the MaxBytesReader limit; every other failure (client hung up mid-body,
// malformed chunking) is the client's bad request, not an oversize one.
func bodyErrStatus(err error) int {
	var mbe *http.MaxBytesError
	if errors.As(err, &mbe) {
		return http.StatusRequestEntityTooLarge
	}
	return http.StatusBadRequest
}

// maxScenarioLabels bounds the cardinality of the scenario metrics label.
// Scenario names come from untrusted POST bodies, so without a cap a client
// could mint one time series per request; past the cap new names fold into
// the "other" child and /metrics stays scrape-sized.
const maxScenarioLabels = 64

// scenarioLabel maps a variant name to its metrics label: the base scenario
// name (sweep suffixes like "/vdd=0.800" fold into their parent), admitted
// into the label set until the cardinality cap, then "other".
func (s *Server) scenarioLabel(name string) string {
	base := name
	if i := strings.IndexByte(base, '/'); i >= 0 {
		base = base[:i]
	}
	s.labelMu.Lock()
	defer s.labelMu.Unlock()
	if s.scenarioNames[base] {
		return base
	}
	if len(s.scenarioNames) >= maxScenarioLabels {
		return "other"
	}
	s.scenarioNames[base] = true
	return base
}

// variantLine is one NDJSON line of a scenarios response: the typed results
// of one sweep variant (or the whole scenario when there is no sweep). A
// failed variant carries its error in-band so the stream — and the variants
// after it — survive one bad grid corner.
type variantLine struct {
	// Scenario is the variant's derived name (e.g. "vddsweep/vdd=0.800").
	Scenario string `json:"scenario"`
	// Key is the scenario content digest, the same value folded into the
	// compute-cache key; two lines with equal keys describe identical
	// roadmaps.
	Key string `json:"key"`
	// Artifacts holds the typed results that computed, in registry order.
	Artifacts []*result.Result `json:"artifacts,omitempty"`
	// Error aggregates this variant's failures (admission cut short,
	// artifact computes that errored). Partial results still appear above.
	Error string `json:"error,omitempty"`
}

// handleScenarios is POST /api/v1/scenarios: the body is one scenario
// document (same schema as the CLI's -scenario files), validated by the
// strict scenario.Parse; a sweep expands into its grid. Every variant is
// priced and admitted through the weighted FIFO gate independently — the
// grid fans onto the compute pool as capacity allows — and results stream
// back as NDJSON in grid order regardless of completion order.
//
// Scenario computes never consult peer replicas: the internal result
// exchange carries only mesh-n, so a peer could not reconstruct the
// scenario; the local solve is the base case that is always correct.
func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	arts := s.order
	if only := q.Get("only"); only != "" {
		arts = nil
		for _, id := range strings.Split(only, ",") {
			id = strings.TrimSpace(id)
			a, ok := s.byID[id]
			if !ok {
				apiError(w, http.StatusBadRequest, "unknown artifact %q (GET /api/v1/artifacts for the index)", id)
				return
			}
			arts = append(arts, a)
		}
	}
	meshN := 0
	if v := q.Get("mesh-n"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			apiError(w, http.StatusBadRequest, "mesh-n %q is not an integer", v)
			return
		}
		if err := repro.ValidateMeshN(n); err != nil {
			apiError(w, http.StatusBadRequest, "%v", err)
			return
		}
		meshN = n
	}
	body, err := readBody(w, r, scenario.MaxFileBytes)
	if err != nil {
		apiError(w, bodyErrStatus(err), "reading scenario body: %v", err)
		return
	}
	sc, err := scenario.Parse(body)
	if err != nil {
		apiError(w, http.StatusBadRequest, "%v", err)
		return
	}
	variants, err := sc.Variants()
	if err != nil {
		apiError(w, http.StatusBadRequest, "expanding sweep: %v", err)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.timeout)
	defer cancel()
	type outcome struct {
		results []*result.Result
		err     error
	}
	chans := make([]chan outcome, len(variants))
	wt := int64(len(arts)) * weight(meshN)
	// Batch-prime the sweep's mesh solves before the variants fan out: all
	// variants share one grid size, so their dominant solves run in one
	// lockstep pattern traversal and each variant's compute consumes its
	// parked, bit-identical drop. Priming is real solver work, so it must
	// hold gate capacity like any variant would — one variant's weight
	// covers it (the batch replaces the variants' individual solves, it
	// does not add to them). Best-effort: an admission timeout just skips
	// priming, and the variants solve solo as before.
	if len(variants) > 1 {
		if release, aerr := s.gate.Acquire(ctx, wt); aerr == nil {
			repro.PrimeVariants(arts, repro.Options{MeshN: meshN}, variants)
			release()
		}
	}
	for i, v := range variants {
		ch := make(chan outcome, 1)
		chans[i] = ch
		go func(v *scenario.Scenario) {
			release, aerr := s.gate.Acquire(ctx, wt)
			if aerr != nil {
				s.met.rejected.Inc()
				ch <- outcome{err: fmt.Errorf("admission gate wait canceled: %w", aerr)}
				return
			}
			defer release()
			s.met.scenarioComputes.With(s.scenarioLabel(v.Name)).Inc()
			opts := repro.Options{MeshN: meshN, Scenario: v}
			// ctx carries both the request deadline and the client
			// disconnect: a hung-up stream stops fanning new artifact
			// computes onto the pool instead of running the grid to
			// completion while holding gate weight.
			results, cerr := repro.ComputeAllCtx(ctx, runner.Pool{Workers: s.jobs}, arts, opts)
			ch <- outcome{results, cerr}
		}(v)
	}

	// Stream in grid order. The header commits before the first variant
	// finishes, so failures from here on are typed lines, not status codes.
	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	timedOut := false
	for i, v := range variants {
		line := variantLine{Scenario: v.Name, Key: v.Key()}
		if timedOut {
			line.Error = "request deadline exceeded before this variant was collected"
		} else {
			select {
			case out := <-chans[i]:
				for _, res := range out.results {
					if res != nil {
						line.Artifacts = append(line.Artifacts, res)
					}
				}
				if out.err != nil {
					line.Error = out.err.Error()
				}
			case <-ctx.Done():
				// Stop waiting but keep emitting one line per variant so the
				// stream stays parseable and complete. The abandoned computes
				// finish into the cache and release their gate units.
				s.met.timeouts.Inc()
				timedOut = true
				line.Error = "request deadline exceeded before this variant was collected"
			}
		}
		if err := enc.Encode(line); err != nil {
			return // client hung up; goroutines drain via their buffered channels
		}
		if flusher != nil {
			flusher.Flush()
		}
	}
}
