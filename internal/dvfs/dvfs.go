// Package dvfs implements dynamic voltage/frequency scaling — the
// Transmeta-style response the paper's §2.1 contrasts with simple clock
// throttling. Operating points are derived from the device models (the
// maximum frequency at each supply comes from the reference inverter's FO4
// delay), a governor walks the table against utilization and temperature,
// and the energy accounting shows why voltage scaling beats clock gating:
// work costs C·V² per operation, so slowing down *and* lowering the rail
// returns quadratic energy per unit of work.
package dvfs

import (
	"fmt"
	"math"

	"nanometer/internal/device"
	"nanometer/internal/gate"
	"nanometer/internal/units"
)

// OperatingPoint is one (Vdd, f) pair of the DVFS table.
type OperatingPoint struct {
	// Vdd is the supply; FreqHz the maximum clock the logic meets there.
	Vdd    float64
	FreqHz float64
	// RelSpeed and RelPower are normalized to the top point (dynamic
	// power at full utilization).
	RelSpeed, RelPower float64
	// EnergyPerWork is the relative energy per operation (∝ Vdd²).
	EnergyPerWork float64
}

// Table is a DVFS operating-point table for a node.
type Table struct {
	NodeNM int
	Points []OperatingPoint // descending Vdd; Points[0] is the top point
	// LogicDepth is the FO4 depths per cycle used to map gate delay to
	// clock frequency.
	LogicDepth float64
}

// NewTable builds an n-point table for a node, spanning supplies from the
// nominal Vdd down to loFrac·Vdd. Frequencies come from the reference
// inverter's FO4 delay with logicDepth stages per cycle (zero selects the
// depth that reproduces the node's local clock at nominal supply).
func NewTable(nodeNM, n int, loFrac, logicDepth float64) (*Table, error) {
	return NewTableIn(device.BaseLab(), nodeNM, n, loFrac, logicDepth)
}

// NewTableIn is NewTable against an explicit laboratory.
func NewTableIn(lab *device.Lab, nodeNM, n int, loFrac, logicDepth float64) (*Table, error) {
	if n < 2 {
		return nil, fmt.Errorf("dvfs: need at least 2 points, got %d", n)
	}
	if loFrac <= 0 || loFrac >= 1 {
		return nil, fmt.Errorf("dvfs: low fraction %g outside (0,1)", loFrac)
	}
	node, err := lab.Node(nodeNM)
	if err != nil {
		return nil, err
	}
	inv, err := gate.ReferenceInverterIn(lab, nodeNM)
	if err != nil {
		return nil, err
	}
	T := units.CelsiusToKelvin(85)
	if logicDepth == 0 {
		logicDepth = 1 / (node.LocalClockHz * inv.FO4Delay(node.Vdd, T))
		if logicDepth < 2 {
			logicDepth = 2
		}
	}
	t := &Table{NodeNM: nodeNM, LogicDepth: logicDepth}
	for i := 0; i < n; i++ {
		frac := 1 - (1-loFrac)*float64(i)/float64(n-1)
		vdd := frac * node.Vdd
		fo4 := inv.FO4Delay(vdd, T)
		if math.IsInf(fo4, 1) || fo4 <= 0 {
			return nil, fmt.Errorf("dvfs: no valid frequency at %g V", vdd)
		}
		t.Points = append(t.Points, OperatingPoint{
			Vdd:    vdd,
			FreqHz: 1 / (logicDepth * fo4),
		})
	}
	top := t.Points[0]
	for i := range t.Points {
		p := &t.Points[i]
		p.RelSpeed = p.FreqHz / top.FreqHz
		// Dynamic power ∝ f·V²; normalized to the top point.
		p.RelPower = (p.FreqHz * p.Vdd * p.Vdd) / (top.FreqHz * top.Vdd * top.Vdd)
		p.EnergyPerWork = (p.Vdd * p.Vdd) / (top.Vdd * top.Vdd)
	}
	return t, nil
}

// PointForUtilization returns the lowest-power point whose speed covers the
// demanded utilization (fraction of full-speed work per interval).
func (t *Table) PointForUtilization(u float64) OperatingPoint {
	best := t.Points[0]
	for _, p := range t.Points {
		if p.RelSpeed >= u-1e-12 {
			best = p
		}
	}
	return best
}

// EnergyVsThrottling compares the two §2.1 responses delivering the same
// work: a DVFS governor running each interval at the matching point, vs
// full-voltage clock gating (run at full speed for u of the time). The
// return is DVFS energy over gating energy (< 1: the quadratic advantage).
func (t *Table) EnergyVsThrottling(utilizations []float64) float64 {
	var dvfsE, gateE float64
	for _, u := range utilizations {
		u = math.Max(0, math.Min(1, u))
		p := t.PointForUtilization(u)
		// Work u delivered at energy-per-work Vdd² (relative): the DVFS
		// point may exceed the demand; it still pays per work done.
		dvfsE += u * p.EnergyPerWork
		gateE += u * 1.0
	}
	if gateE == 0 {
		return 0
	}
	return dvfsE / gateE
}

// Governor walks the table against a utilization trace with hysteresis,
// returning the sequence of chosen points and the mean relative power.
type Governor struct {
	Table *Table
	// UpThreshold and DownThreshold are utilization bounds for stepping
	// the operating point (defaults 0.9 / 0.6).
	UpThreshold, DownThreshold float64

	idx int
}

// NewGovernor returns a governor starting at the top point.
func NewGovernor(t *Table) *Governor {
	return &Governor{Table: t, UpThreshold: 0.9, DownThreshold: 0.6}
}

// Step consumes one interval's utilization (relative to the *current*
// point's speed) and returns the point for the next interval.
func (g *Governor) Step(utilization float64) OperatingPoint {
	if utilization > g.UpThreshold && g.idx > 0 {
		g.idx--
	} else if utilization < g.DownThreshold && g.idx < len(g.Table.Points)-1 {
		g.idx++
	}
	return g.Table.Points[g.idx]
}

// Run processes a demand trace (work per interval, relative to full speed)
// and returns delivered work, mean relative power, and the backlog left.
func (g *Governor) Run(demand []float64) (work, meanPower, backlog float64) {
	cur := g.Table.Points[g.idx]
	for _, d := range demand {
		pending := d + backlog
		done := math.Min(pending, cur.RelSpeed)
		backlog = pending - done
		work += done
		// Power: active fraction at the point's power, idle otherwise.
		active := 0.0
		if cur.RelSpeed > 0 {
			active = done / cur.RelSpeed
		}
		meanPower += active * cur.RelPower
		util := active
		cur = g.Step(util)
	}
	if n := len(demand); n > 0 {
		meanPower /= float64(n)
	}
	return work, meanPower, backlog
}
