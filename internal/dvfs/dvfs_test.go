package dvfs

import (
	"math"
	"math/rand"
	"testing"

	"nanometer/internal/units"
)

func table(t *testing.T) *Table {
	t.Helper()
	tb, err := NewTable(100, 6, 0.55, 0)
	if err != nil {
		t.Fatal(err)
	}
	return tb
}

func TestNewTableErrors(t *testing.T) {
	if _, err := NewTable(100, 1, 0.5, 0); err == nil {
		t.Fatalf("single point must error")
	}
	if _, err := NewTable(100, 4, 1.2, 0); err == nil {
		t.Fatalf("bad fraction must error")
	}
	if _, err := NewTable(65, 4, 0.5, 0); err == nil {
		t.Fatalf("unknown node must error")
	}
}

func TestTableShape(t *testing.T) {
	tb := table(t)
	if len(tb.Points) != 6 {
		t.Fatalf("want 6 points")
	}
	top := tb.Points[0]
	if top.RelSpeed != 1 || top.RelPower != 1 || top.EnergyPerWork != 1 {
		t.Fatalf("top point must normalize to 1: %+v", top)
	}
	for i := 1; i < len(tb.Points); i++ {
		a, b := tb.Points[i-1], tb.Points[i]
		if b.Vdd >= a.Vdd || b.FreqHz >= a.FreqHz {
			t.Fatalf("points must descend in Vdd and frequency")
		}
		if b.RelPower >= a.RelPower {
			t.Fatalf("power must fall with the operating point")
		}
		if b.EnergyPerWork >= a.EnergyPerWork {
			t.Fatalf("energy per work must fall with Vdd")
		}
	}
	// Energy per work is exactly quadratic in Vdd.
	last := tb.Points[len(tb.Points)-1]
	want := (last.Vdd / top.Vdd) * (last.Vdd / top.Vdd)
	if !units.ApproxEqual(last.EnergyPerWork, want, 1e-9, 0) {
		t.Fatalf("energy/work = %g, want Vdd² ratio %g", last.EnergyPerWork, want)
	}
	// Frequency falls faster than linearly in Vdd near threshold — the
	// speed at the bottom point is below the Vdd ratio.
	if last.RelSpeed >= last.Vdd/top.Vdd {
		t.Fatalf("frequency should degrade super-linearly toward low Vdd")
	}
}

func TestTableMatchesNodeClock(t *testing.T) {
	// With the derived logic depth, the top point reproduces the node's
	// local clock target.
	tb := table(t)
	if tb.Points[0].FreqHz < 1e9 {
		t.Fatalf("top frequency %g implausible", tb.Points[0].FreqHz)
	}
	if tb.LogicDepth < 2 {
		t.Fatalf("logic depth %g too shallow", tb.LogicDepth)
	}
}

func TestPointForUtilization(t *testing.T) {
	tb := table(t)
	if p := tb.PointForUtilization(1.0); p.Vdd != tb.Points[0].Vdd {
		t.Fatalf("full demand needs the top point")
	}
	low := tb.PointForUtilization(0.05)
	if low.Vdd != tb.Points[len(tb.Points)-1].Vdd {
		t.Fatalf("tiny demand should pick the bottom point")
	}
	// The chosen point always covers the demand.
	for _, u := range []float64{0.1, 0.3, 0.5, 0.7, 0.9} {
		p := tb.PointForUtilization(u)
		if p.RelSpeed < u-1e-12 {
			t.Fatalf("point at %g V cannot cover utilization %g", p.Vdd, u)
		}
	}
}

func TestEnergyVsThrottling(t *testing.T) {
	tb := table(t)
	rng := rand.New(rand.NewSource(3))
	utils := make([]float64, 500)
	for i := range utils {
		utils[i] = 0.2 + 0.5*rng.Float64()
	}
	ratio := tb.EnergyVsThrottling(utils)
	// The quadratic advantage: DVFS should use well under the gating
	// energy at partial load.
	if ratio >= 0.9 {
		t.Fatalf("DVFS/gating energy = %g, expected a clear win", ratio)
	}
	if ratio <= 0.2 {
		t.Fatalf("DVFS/gating energy = %g suspiciously low for this table", ratio)
	}
	// At saturation there is nothing to save.
	full := tb.EnergyVsThrottling([]float64{1, 1, 1})
	if !units.ApproxEqual(full, 1, 1e-9, 0) {
		t.Fatalf("full load must cost the same: %g", full)
	}
}

func TestGovernorTracksLoad(t *testing.T) {
	tb := table(t)
	g := NewGovernor(tb)
	// Sustained low demand walks the governor down the table.
	for i := 0; i < 20; i++ {
		g.Step(0.1)
	}
	low := tb.Points[g.idx]
	if low.Vdd >= tb.Points[1].Vdd {
		t.Fatalf("governor failed to descend under low load (at %g V)", low.Vdd)
	}
	// A burst walks it back up.
	for i := 0; i < 20; i++ {
		g.Step(0.99)
	}
	if g.idx != 0 {
		t.Fatalf("governor failed to return to the top point under load")
	}
}

func TestGovernorRunDeliversWork(t *testing.T) {
	tb := table(t)
	rng := rand.New(rand.NewSource(7))
	demand := make([]float64, 2000)
	var total float64
	for i := range demand {
		demand[i] = 0.55 * rng.Float64()
		total += demand[i]
	}
	g := NewGovernor(tb)
	work, meanPower, backlog := g.Run(demand)
	if backlog > 0.02*total {
		t.Fatalf("governor left %.1f%% of the work undone", backlog/total*100)
	}
	if math.Abs(work+backlog-total) > 1e-9 {
		t.Fatalf("work accounting broken: %g + %g vs %g", work, backlog, total)
	}
	// Mean power must undercut running the same trace pinned at the top
	// point (active-fraction × full power).
	gTop := NewGovernor(tb)
	gTop.DownThreshold = -1 // never descend
	_, topPower, _ := gTop.Run(demand)
	if meanPower >= topPower {
		t.Fatalf("governor power %g must beat top-pinned %g", meanPower, topPower)
	}
}

// TestGovernorRunConservesWork is the work-conservation property: over any
// demand trace, delivered work plus leftover backlog equals total demand
// to 1e-12 (relative), work never exceeds demand, and backlog never goes
// negative. Shapes cover idle, steady, bursty, overload, and adversarial
// threshold-riding traces across several seeds and table geometries.
func TestGovernorRunConservesWork(t *testing.T) {
	shapes := []struct {
		name string
		gen  func(rng *rand.Rand, n int) []float64
	}{
		{"idle", func(_ *rand.Rand, n int) []float64 { return make([]float64, n) }},
		{"uniform", func(rng *rand.Rand, n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				d[i] = rng.Float64()
			}
			return d
		}},
		{"bursty", func(rng *rand.Rand, n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				if rng.Float64() < 0.15 {
					d[i] = 0.9 + 0.1*rng.Float64()
				} else {
					d[i] = 0.1 * rng.Float64()
				}
			}
			return d
		}},
		{"overload", func(rng *rand.Rand, n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				d[i] = 1 + 2*rng.Float64() // more than full speed can ever deliver
			}
			return d
		}},
		{"threshold-riding", func(rng *rand.Rand, n int) []float64 {
			d := make([]float64, n)
			for i := range d {
				// Hover around the governor's up/down thresholds to force
				// constant point changes.
				d[i] = 0.6 + 0.3*rng.Float64()
			}
			return d
		}},
	}
	for _, points := range []int{2, 6, 12} {
		tb, err := NewTable(100, points, 0.55, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, sh := range shapes {
			for seed := int64(1); seed <= 5; seed++ {
				rng := rand.New(rand.NewSource(seed))
				demand := sh.gen(rng, 4096)
				var total float64
				for _, d := range demand {
					total += d
				}
				g := NewGovernor(tb)
				work, meanPower, backlog := g.Run(demand)
				tol := 1e-12 * math.Max(1, total)
				if math.Abs(work+backlog-total) > tol {
					t.Fatalf("%s/points=%d/seed=%d: work %g + backlog %g != demand %g (err %g > %g)",
						sh.name, points, seed, work, backlog, total, math.Abs(work+backlog-total), tol)
				}
				if backlog < 0 {
					t.Fatalf("%s/points=%d/seed=%d: negative backlog %g", sh.name, points, seed, backlog)
				}
				if work > total+tol {
					t.Fatalf("%s/points=%d/seed=%d: delivered %g exceeds demand %g", sh.name, points, seed, work, total)
				}
				if meanPower < 0 || meanPower > 1+1e-12 {
					t.Fatalf("%s/points=%d/seed=%d: mean relative power %g outside [0, 1]", sh.name, points, seed, meanPower)
				}
			}
		}
	}
}
