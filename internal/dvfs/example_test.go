package dvfs_test

import (
	"fmt"

	"nanometer/internal/dvfs"
)

// Transmeta-style voltage scaling (§2.1): at partial utilization, walking
// the supply down returns quadratically more energy than gating the clock
// at full voltage.
func ExampleTable_EnergyVsThrottling() {
	tb, err := dvfs.NewTable(100, 6, 0.55, 0)
	if err != nil {
		panic(err)
	}
	// A workload running at 40 % utilization.
	utils := make([]float64, 100)
	for i := range utils {
		utils[i] = 0.4
	}
	ratio := tb.EnergyVsThrottling(utils)
	fmt.Printf("DVFS uses a fraction of the clock-gating energy: %v\n", ratio < 0.7)
	// Output:
	// DVFS uses a fraction of the clock-gating energy: true
}

// The governor descends the table under light load and returns under bursts.
func ExampleGovernor() {
	tb, err := dvfs.NewTable(100, 6, 0.55, 0)
	if err != nil {
		panic(err)
	}
	g := dvfs.NewGovernor(tb)
	var low dvfs.OperatingPoint
	for i := 0; i < 10; i++ {
		low = g.Step(0.1)
	}
	var high dvfs.OperatingPoint
	for i := 0; i < 10; i++ {
		high = g.Step(0.99)
	}
	fmt.Printf("idle descends: %v; burst recovers the top point: %v\n",
		low.Vdd < tb.Points[0].Vdd, high.Vdd == tb.Points[0].Vdd)
	// Output:
	// idle descends: true; burst recovers the top point: true
}
