package analyzers

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package ready for analysis.
type Package struct {
	Path      string
	Fset      *token.FileSet
	Syntax    []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	Dir        string
	ImportPath string
	Name       string
	Export     string
	GoFiles    []string
	Module     *struct{ Path string }
	Error      *struct{ Err string }
}

// Load type-checks the packages matching the patterns (relative to dir,
// which must sit inside a module) and returns them ready for analysis.
//
// It is a stdlib-only stand-in for golang.org/x/tools/go/packages: one
// `go list -export -deps` invocation enumerates the packages and has the
// go command produce export data for every dependency, then each target
// package is parsed from source and type-checked against that export data
// via the gc importer. Only the module's own packages are returned (and
// only their non-test files — test files drop errors legitimately and are
// exercised by `go test` itself, not by the lint gate).
func Load(dir string, patterns ...string) ([]*Package, error) {
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	wanted, err := goListTargets(root, patterns)
	if err != nil {
		return nil, err
	}
	listed, err := goList(root, patterns)
	if err != nil {
		return nil, err
	}

	exports := map[string]string{}
	var targets []listedPackage
	for _, p := range listed {
		if p.Error != nil {
			return nil, fmt.Errorf("nanolint: load %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if wanted[p.ImportPath] {
			targets = append(targets, p)
		}
	}

	fset := token.NewFileSet()
	imp := NewExportImporter(fset, exports)
	var pkgs []*Package
	for _, p := range targets {
		pkg, err := checkPackage(fset, imp, p)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// goListTargets expands the patterns without -deps, so the analysis
// targets are exactly the packages the user named — the -deps run that
// produces export data drags the whole dependency closure in, and deps
// must be importable but not analyzed.
func goListTargets(root string, patterns []string) (map[string]bool, error) {
	args := append([]string{"list"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("nanolint: go list: %v\n%s", err, stderr.String())
	}
	wanted := map[string]bool{}
	for _, line := range bytes.Split(bytes.TrimSpace(out), []byte("\n")) {
		if len(line) > 0 {
			wanted[string(line)] = true
		}
	}
	return wanted, nil
}

// NewExportImporter returns a types.Importer resolving import paths
// through the export-data files produced by `go list -export`.
func NewExportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("nanolint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// LoadExports runs `go list -export -deps` for the patterns and returns
// import path → export-data file for every package in the closure. The
// fixture test harness uses this to type-check testdata packages against
// the real module and standard library.
func LoadExports(dir string, patterns ...string) (map[string]string, error) {
	root, err := moduleRoot(dir)
	if err != nil {
		return nil, err
	}
	listed, err := goList(root, patterns)
	if err != nil {
		return nil, err
	}
	exports := map[string]string{}
	for _, p := range listed {
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
	}
	return exports, nil
}

func goList(root string, patterns []string) ([]listedPackage, error) {
	args := []string{"list", "-e", "-export", "-deps",
		"-json=Dir,ImportPath,Name,Export,GoFiles,Module,Error"}
	args = append(args, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = root
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("nanolint: go list: %v\n%s", err, stderr.String())
	}
	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var p listedPackage
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("nanolint: decode go list output: %w", err)
		}
		listed = append(listed, p)
	}
	return listed, nil
}

func moduleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for d := abs; ; {
		if _, err := os.Stat(filepath.Join(d, "go.mod")); err == nil {
			return d, nil
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", errors.New("nanolint: no go.mod found above " + abs)
		}
		d = parent
	}
}

func checkPackage(fset *token.FileSet, imp types.Importer, p listedPackage) (*Package, error) {
	var files []*ast.File
	for _, name := range p.GoFiles {
		af, err := parser.ParseFile(fset, filepath.Join(p.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("nanolint: parse %s: %w", name, err)
		}
		files = append(files, af)
	}
	return CheckFiles(fset, imp, p.ImportPath, files)
}

// CheckFiles type-checks a parsed file set as one package. Shared by the
// loader and the fixture harness.
func CheckFiles(fset *token.FileSet, imp types.Importer, path string, files []*ast.File) (*Package, error) {
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("nanolint: typecheck %s: %w", path, err)
	}
	return &Package{Path: path, Fset: fset, Syntax: files, Types: tpkg, TypesInfo: info}, nil
}
