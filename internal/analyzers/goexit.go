package analyzers

import (
	"go/ast"
	"go/types"
)

// Goexit requires every goroutine to carry a provable exit path, so the
// serving layer cannot accrete leaked workers as it scales out. A
// goroutine body passes if any of these holds:
//
//   - it contains no unbounded loop: straight-line bodies and bounded
//     loops (three-clause counting loops, range over slice/map/int)
//     terminate when their calls do;
//   - it receives from a signal channel: <-ctx.Done() or any chan struct{}
//     (the repo's done/notify convention), usually inside a select;
//   - it ranges over a channel that the spawning function closes
//     (producer-side close pairing);
//   - it calls Done on a sync.WaitGroup that the spawning function Waits
//     on — the leak would deadlock the spawner, so tests see it.
//
// `go f(...)` on a same-package function is checked against f's body; a
// goroutine whose body the analyzer cannot see (cross-package callee,
// function value) must be annotated. Suppress deliberate
// run-to-completion goroutines with `//lint:allow goexit <reason>`.
var Goexit = &Analyzer{
	Name: "goexit",
	Doc: "flags goroutines with no provable exit path (unbounded loop " +
		"without a ctx/done receive, WaitGroup pairing, or close pairing)",
	Run: runGoexit,
}

func runGoexit(pass *Pass) error {
	decls := packageFuncDecls(pass)
	for _, file := range pass.Files {
		// Track the function body enclosing each go statement for the
		// same-function pairing rules.
		var walk func(n ast.Node, encl *ast.BlockStmt)
		walk = func(n ast.Node, encl *ast.BlockStmt) {
			ast.Inspect(n, func(m ast.Node) bool {
				switch e := m.(type) {
				case *ast.FuncDecl:
					if e.Body != nil {
						walk(e.Body, e.Body)
					}
					return false
				case *ast.FuncLit:
					walk(e.Body, e.Body)
					return false
				case *ast.GoStmt:
					checkGoStmt(pass, decls, e, encl)
					// Descend: the spawned literal may itself spawn.
				}
				return true
			})
		}
		walk(file, nil)
	}
	return nil
}

func packageFuncDecls(pass *Pass) map[*types.Func]*ast.FuncDecl {
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, file := range pass.Files {
		for _, d := range file.Decls {
			if fn, ok := d.(*ast.FuncDecl); ok {
				if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
					decls[obj] = fn
				}
			}
		}
	}
	return decls
}

func checkGoStmt(pass *Pass, decls map[*types.Func]*ast.FuncDecl, g *ast.GoStmt, encl *ast.BlockStmt) {
	var body *ast.BlockStmt
	switch fun := g.Call.Fun.(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn := calledFunc(pass, g.Call); fn != nil {
			if decl, ok := decls[fn]; ok {
				body = decl.Body
			}
		}
	}
	if body == nil {
		pass.Reportf(g.Pos(),
			"goroutine body is outside this package: exit cannot be proved "+
				"(annotate //lint:allow goexit <reason>)")
		return
	}
	if !hasUnboundedLoop(pass, body) {
		return
	}
	if hasSignalReceive(pass, body) {
		return
	}
	if hasWaitGroupPairing(pass, body, encl) {
		return
	}
	if hasClosePairing(pass, body, encl) {
		return
	}
	pass.Reportf(g.Pos(),
		"goroutine has an unbounded loop and no provable exit path: add a "+
			"select on ctx.Done()/a done channel, a same-function WaitGroup "+
			"or close() pairing, or annotate //lint:allow goexit <reason>")
}

// hasUnboundedLoop reports a `for {}`/`for cond {}` loop or a range over a
// channel anywhere in the body. Three-clause counting loops and ranges
// over non-channel operands are bounded.
func hasUnboundedLoop(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.ForStmt:
			if s.Cond == nil || s.Post == nil {
				found = true
			}
		case *ast.RangeStmt:
			if isChannelType(pass.TypesInfo.TypeOf(s.X)) {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasSignalReceive reports a receive from a chan struct{} — the repo's
// done/notify convention, which covers <-ctx.Done(), <-j.Done(), and plain
// done channels — anywhere in the body.
func hasSignalReceive(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if u, ok := n.(*ast.UnaryExpr); ok && u.Op.String() == "<-" {
			if t := pass.TypesInfo.TypeOf(u.X); isStructChanType(t) {
				found = true
			}
		}
		return !found
	})
	return found
}

// hasWaitGroupPairing reports wg.Done() in the goroutine body paired with
// wg.Wait() (same receiver spelling) in the spawning function.
func hasWaitGroupPairing(pass *Pass, body, encl *ast.BlockStmt) bool {
	if encl == nil {
		return false
	}
	for wg := range waitGroupCalls(pass, body, "Done") {
		if _, ok := waitGroupCalls(pass, encl, "Wait")[wg]; ok {
			return true
		}
	}
	return false
}

func waitGroupCalls(pass *Pass, body *ast.BlockStmt, method string) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != method {
			return true
		}
		if isWaitGroupType(pass.TypesInfo.TypeOf(sel.X)) {
			out[types.ExprString(sel.X)] = true
		}
		return true
	})
	return out
}

// hasClosePairing reports a range over channel ch in the goroutine body
// paired with close(ch) (same spelling) in the spawning function.
func hasClosePairing(pass *Pass, body, encl *ast.BlockStmt) bool {
	if encl == nil {
		return false
	}
	closed := map[string]bool{}
	ast.Inspect(encl, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "close" && len(call.Args) == 1 {
			closed[types.ExprString(call.Args[0])] = true
		}
		return true
	})
	if len(closed) == 0 {
		return false
	}
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok && isChannelType(pass.TypesInfo.TypeOf(r.X)) {
			if closed[types.ExprString(r.X)] {
				found = true
			}
		}
		return !found
	})
	return found
}

func isChannelType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// isStructChanType matches chan struct{} / <-chan struct{}.
func isStructChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	ch, ok := t.Underlying().(*types.Chan)
	if !ok {
		return false
	}
	st, ok := ch.Elem().Underlying().(*types.Struct)
	return ok && st.NumFields() == 0
}

func isWaitGroupType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
