package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// Ctxflow enforces cancellation plumbing in the serving/jobs-era packages:
// code that can block for a long time — the mathx solver family, the repro
// compute entry points, streaming trace runs, gate admission, result-store
// I/O — must be reachable from a cancellation signal.
//
// Three rules, checked per package in scope:
//
//  1. A call to a blocking API that does not itself accept a context must
//     happen inside a function (or closure nest) that takes a
//     context.Context first parameter or an *http.Request (handlers derive
//     their context from the request). Blocking APIs that take a ctx first
//     parameter are self-threading and pass.
//  2. context.Background() / context.TODO() are banned outside package
//     main and tests: mid-stack code must accept its caller's context.
//     Lifecycle roots (a queue that owns its own shutdown) annotate with
//     the reason.
//  3. A context.Context parameter, when present, must come first — a
//     buried ctx is how threading mistakes hide.
//
// Calls within the package that defines the blocking API are exempt (the
// provider's internals are its own business; the contract binds callers).
var Ctxflow = &Analyzer{
	Name: "ctxflow",
	Doc: "requires a context.Context (or *http.Request) in scope around " +
		"blocking compute/IO calls and bans context.Background()/TODO() " +
		"outside main and tests",
	Scope: []string{
		"nanometer/internal/serve",
		"nanometer/internal/jobs",
		"nanometer/internal/trace",
		"nanometer/internal/repro",
		"nanometer/internal/runner",
		"nanometer/internal/store",
		"nanometer/internal/powergrid",
		"nanometer/internal/scenario",
	},
	Run: runCtxflow,
}

// ctxflowBlocking classifies a called function as a blocking API,
// returning a printable name. Matching is by defining package + name
// prefix, so methods (SparseMatrix.SolveMGW, Store.Get) and interface
// methods (repro.ResultStore.Get) all count.
func ctxflowBlocking(fn *types.Func) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	name := fn.Name()
	ok := false
	switch pkg.Path() {
	case "nanometer/internal/mathx":
		ok = strings.HasPrefix(name, "Solve")
	case "nanometer/internal/repro":
		ok = strings.HasPrefix(name, "Compute") || name == "Get" || name == "Put"
	case "nanometer/internal/trace":
		ok = name == "Run"
	case "nanometer/internal/serve":
		ok = name == "Acquire"
	case "nanometer/internal/store":
		ok = name == "Get" || name == "Put"
	}
	if !ok {
		return "", false
	}
	return pkg.Name() + "." + name, true
}

func runCtxflow(pass *Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkCtxParamOrder(pass, fn.Type)
			hasSignal := funcHasCtxSignal(pass, fn.Type)
			checkCtxflowBody(pass, fn.Body, hasSignal)
		}
	}
	return nil
}

// checkCtxflowBody walks a function body; signal reports whether any
// enclosing function has a ctx/request parameter. Function literals are
// new frames: they contribute their own parameters but inherit the
// enclosing signal (a closure over a ctx-bearing handler is fine).
func checkCtxflowBody(pass *Pass, body *ast.BlockStmt, signal bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.FuncLit:
			checkCtxParamOrder(pass, e.Type)
			checkCtxflowBody(pass, e.Body, signal || funcHasCtxSignal(pass, e.Type))
			return false
		case *ast.CallExpr:
			checkCtxflowCall(pass, e, signal)
		}
		return true
	})
}

func checkCtxflowCall(pass *Pass, call *ast.CallExpr, signal bool) {
	fn := calledFunc(pass, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// Rule 2: no fresh root contexts mid-stack.
	if fn.Pkg().Path() == "context" && (fn.Name() == "Background" || fn.Name() == "TODO") {
		pass.Reportf(call.Pos(),
			"context.%s() is banned here: accept the caller's ctx "+
				"(lifecycle roots annotate //lint:allow ctxflow <reason>)", fn.Name())
		return
	}
	// Rule 1: blocking APIs need a cancellation signal in scope.
	if fn.Pkg().Path() == pass.Pkg.Path() {
		return // provider-internal call; the contract binds callers
	}
	name, blocking := ctxflowBlocking(fn)
	if !blocking {
		return
	}
	if sig, ok := fn.Type().(*types.Signature); ok && signatureTakesCtxFirst(sig) {
		return // self-threading: the callee accepts ctx directly
	}
	if signal {
		return
	}
	pass.Reportf(call.Pos(),
		"%s can block but no cancellation signal is in scope: the enclosing "+
			"function must take context.Context as its first parameter "+
			"(or an *http.Request), or annotate //lint:allow ctxflow <reason>", name)
}

// checkCtxParamOrder reports a context.Context parameter not in first
// position (rule 3).
func checkCtxParamOrder(pass *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	idx := 0
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) && idx > 0 {
			pass.Reportf(field.Pos(),
				"context.Context must be the first parameter")
		}
		idx += n
	}
}

// funcHasCtxSignal reports whether the function type carries a
// cancellation source: a context.Context or *http.Request parameter.
func funcHasCtxSignal(pass *Pass, ft *ast.FuncType) bool {
	if ft.Params == nil {
		return false
	}
	for _, field := range ft.Params.List {
		t := pass.TypesInfo.TypeOf(field.Type)
		if isContextType(t) || isHTTPRequestPtr(t) {
			return true
		}
	}
	return false
}

func signatureTakesCtxFirst(sig *types.Signature) bool {
	return sig.Params().Len() > 0 && isContextType(sig.Params().At(0).Type())
}

func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

func isHTTPRequestPtr(t types.Type) bool {
	ptr, ok := t.(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "net/http" && obj.Name() == "Request"
}

// calledFunc resolves a call's callee to a *types.Func (nil for builtins,
// conversions, and function-typed variables).
func calledFunc(pass *Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
