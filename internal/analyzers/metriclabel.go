package analyzers

import (
	"go/ast"
	"strings"
)

// Metriclabel keeps the obs metric registry's label cardinality bounded —
// the failure PR 7 guarded by hand when scenario names (attacker-chosen
// bytes) first flowed toward a metric label. Every child of a labeled vec
// lives forever in the registry, so an unbounded label value is a slow
// memory leak and a metrics-page DoS.
//
// A value passed to (*obs.CounterVec).With must be statically bounded:
//
//   - a constant (literal, named const, or constant expression), or
//   - the result of a fold helper — a function whose name ends in "Label",
//     the repo's convention for "this function owns the boundedness
//     argument" (scenarioLabel folds unknown names to "other" under a hard
//     cap; codeLabel folds out-of-range status codes).
//
// Anything else — a request path segment, a map key, a formatted string —
// is flagged. If the value is bounded for a reason the analyzer cannot
// see, route it through a trivial *Label helper documenting that reason
// rather than annotating call sites one by one.
var Metriclabel = &Analyzer{
	Name: "metriclabel",
	Doc: "flags obs metric-vec label values that are neither constants " +
		"nor routed through a bounded *Label fold helper",
	Run: runMetriclabel,
}

func runMetriclabel(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calledFunc(pass, call)
			if fn == nil || fn.Pkg() == nil || fn.Name() != "With" ||
				fn.Pkg().Path() != "nanometer/internal/obs" {
				return true
			}
			if len(call.Args) != 1 {
				return true
			}
			arg := call.Args[0]
			if pass.TypesInfo.Types[arg].Value != nil {
				return true // constant: bounded by definition
			}
			if c, ok := arg.(*ast.CallExpr); ok {
				if cf := calledFunc(pass, c); cf != nil && strings.HasSuffix(cf.Name(), "Label") {
					return true // fold helper owns the boundedness argument
				}
			}
			pass.Reportf(arg.Pos(),
				"metric label value is not statically bounded: pass a constant "+
					"or fold through a *Label helper (each distinct value becomes "+
					"a permanent registry child)")
			return true
		})
	}
	return nil
}
