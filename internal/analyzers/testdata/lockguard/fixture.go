// The lockguard fixture: `// guarded by <mu>` fields must only be
// touched while the named mutex is held (or from a *Locked caller-holds
// function, or under an explicit allow).
package fixture

import "sync"

type counter struct {
	mu sync.Mutex
	n  int // guarded by mu

	// hits is annotated as a doc comment instead of a line comment —
	// both spellings must bind.
	// guarded by mu
	hits int

	// guarded by missing
	orphan int // want "names no sibling sync.Mutex"
}

// Inc holds the lock across both writes: clean.
func (c *counter) Inc() {
	c.mu.Lock()
	c.n++
	c.hits++
	c.mu.Unlock()
}

// Peek reads a guarded field with no lock held: the violation class.
func (c *counter) Peek() int {
	return c.n // want "c.n is guarded by c.mu, which is not held here"
}

// drainLocked uses the caller-holds naming convention: receiver accesses
// are the caller's responsibility, not findings.
func (c *counter) drainLocked() int {
	v := c.n
	c.n = 0
	return v
}

// Drain pairs the convention's two halves: lock here, touch in *Locked.
func (c *counter) Drain() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.drainLocked()
}

// PeekRacy documents an intentionally racy read with an allow directive.
func (c *counter) PeekRacy() int {
	//lint:allow lockguard monitoring read; staleness is acceptable
	return c.n
}

// branches exercises the early-return shape: the fast path unlocks and
// returns, so its unlock must not leak into the tail where the lock is
// still held.
func (c *counter) branches(fast bool) int {
	c.mu.Lock()
	if fast {
		v := c.n
		c.mu.Unlock()
		return v
	}
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// leaked shows the converse: after an unconditional Unlock the guard is
// gone, so the tail access is a finding.
func (c *counter) leaked() int {
	c.mu.Lock()
	c.n = 1
	c.mu.Unlock()
	return c.n // want "c.n is guarded by c.mu, which is not held here"
}
