// The strictjson fixture: API-boundary JSON must be decoded strictly
// (DisallowUnknownFields) from a bounded source, and json.Unmarshal is
// flagged as lax. Checked under the in-scope import path
// nanometer/internal/serve.
package fixture

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

type payload struct {
	Name string `json:"name"`
}

// decodeStrict is the blessed pattern: held bytes, strict decoder,
// trailing-data check. Clean.
func decodeStrict(data []byte) (payload, error) {
	var p payload
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&p); err != nil {
		return payload{}, err
	}
	if dec.More() {
		return payload{}, fmt.Errorf("trailing data")
	}
	return p, nil
}

// decodeCapped bounds a live request body instead of holding bytes: also
// clean.
func decodeCapped(w http.ResponseWriter, r *http.Request) (payload, error) {
	var p payload
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, 1<<20))
	dec.DisallowUnknownFields()
	return p, dec.Decode(&p)
}

// decodeLax never goes strict: version-skewed fields would vanish.
func decodeLax(data []byte) (payload, error) {
	var p payload
	dec := json.NewDecoder(bytes.NewReader(data)) // want "json decoder never calls DisallowUnknownFields"
	return p, dec.Decode(&p)
}

// decodeUnbounded reads a raw stream straight into the decoder.
func decodeUnbounded(r io.Reader) (payload, error) {
	var p payload
	dec := json.NewDecoder(r) // want "json decoder reads an unbounded stream"
	dec.DisallowUnknownFields()
	return p, dec.Decode(&p)
}

// decodeInline can never call DisallowUnknownFields at all.
func decodeInline(data []byte) (payload, error) {
	var p payload
	err := json.NewDecoder(bytes.NewReader(data)).Decode(&p) // want "inline json decoder cannot call DisallowUnknownFields"
	return p, err
}

// unmarshal is flagged outright.
func unmarshal(data []byte) (payload, error) {
	var p payload
	err := json.Unmarshal(data, &p) // want "json.Unmarshal is lax at an API boundary"
	return p, err
}

// unmarshalTrusted documents the rare trusted-input site with an allow.
func unmarshalTrusted(data []byte) (payload, error) {
	var p payload
	//lint:allow strictjson fixture decodes bytes this process encoded
	err := json.Unmarshal(data, &p)
	return p, err
}
