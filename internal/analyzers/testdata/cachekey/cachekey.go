// Package fixture plants cachekey violations: an Options struct with a
// computeKey method whose classification maps disagree with what the key
// actually hashes.
package fixture

import (
	"hash/fnv"
	"io"
	"strconv"
)

// Options mirrors repro.Options: some fields reach the models
// (compute-side, hashed into the cache key), some only affect encoding.
type Options struct {
	// MeshN is compute-side and correctly hashed.
	MeshN int
	// Tol claims to be compute-side but computeKey ignores it.
	Tol float64 // want "Options.Tol is classified compute-side but computeKey never reads it"
	// Plot is encode-only and correctly excluded.
	Plot bool
	// Verbose claims to be encode-only but computeKey hashes it.
	Verbose bool // want "Options.Verbose is classified encode-only but computeKey reads it"
	// Debug was added without classifying it at all.
	Debug bool // want "Options.Debug is unclassified"
	// Both is listed in both maps.
	Both string // want "Options.Both is classified both compute-side and encode-only"
}

var computeSideFields = map[string]bool{
	"MeshN": true,
	"Tol":   true,
	"Both":  true,
}

var encodeOnlyFields = map[string]bool{
	"Plot":    true,
	"Verbose": true,
	"Both":    true,
}

func (o Options) computeKey() string {
	h := fnv.New64a()
	io.WriteString(h, strconv.Itoa(o.MeshN))
	if o.Verbose {
		io.WriteString(h, "v")
	}
	return strconv.FormatUint(h.Sum64(), 16)
}
