// Package fixture plants solvecheck violations against the real solver
// family: discarded results, blanked errors, and silently dropped
// iteration counts.
package fixture

import (
	"fmt"

	"nanometer/internal/mathx"
	"nanometer/internal/repro"
)

// Whole result discarded.
func discardAll(m *mathx.SparseMatrix, b []float64) {
	m.SolveCG(b, 1e-9, 100) // want "result of mathx.SolveCG discarded"
}

// Discarded through a go statement.
func discardGo(m *mathx.SparseMatrix, b []float64) {
	go m.SolveCG(b, 1e-9, 100) // want "result of mathx.SolveCG discarded by go statement"
}

// Error blanked: ErrNotSPD would vanish.
func blankErr(m *mathx.SparseMatrix, b []float64) []float64 {
	x, iters, _ := m.SolveCG(b, 1e-9, 100) // want "err result of mathx.SolveCG assigned to _"
	_ = iters
	return x
}

// Iteration count silently dropped.
func dropIters(m *mathx.SparseMatrix, b []float64) ([]float64, error) {
	x, _, err := m.SolveCG(b, 1e-9, 100) // want "iters result of mathx.SolveCG silently dropped"
	return x, err
}

// Two-result solvers are covered too.
func denseDiscard(a [][]float64, b []float64) {
	mathx.SolveDense(a, b) // want "result of mathx.SolveDense discarded"
}

// The repro compute entry points carry the same contract.
func computeDiscard(a repro.Artifact, opts repro.Options) {
	a.ComputeCached(opts) // want "result of repro.ComputeCached discarded"
}

func computeBlankErr(a repro.Artifact, opts repro.Options) {
	res, _ := a.ComputeCached(opts) // want "err result of repro.ComputeCached assigned to _"
	_ = res
}

// The compliant shape: both iters and err handled.
func handled(m *mathx.SparseMatrix, b []float64) ([]float64, error) {
	x, iters, err := m.SolveCG(b, 1e-9, 100)
	if err != nil {
		return nil, fmt.Errorf("solve failed after %d iterations: %w", iters, err)
	}
	return x, nil
}

// An annotated drop: the reason names where iters is accounted for.
func allowedDrop(m *mathx.SparseMatrix, b []float64) ([]float64, error) {
	//lint:allow solvecheck iteration count covered by the bench harness
	x, _, err := m.SolveCG(b, 1e-9, 100)
	return x, err
}
