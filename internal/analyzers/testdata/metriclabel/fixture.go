// The metriclabel fixture: values reaching (*obs.CounterVec).With must be
// constants or flow through a *Label fold helper, because every distinct
// value becomes a permanent registry child.
package fixture

import (
	"strconv"

	"nanometer/internal/obs"
)

const okState = "ok"

// record exercises the bounded shapes: literals, named constants, and
// fold-helper results are all clean.
func record(vec *obs.CounterVec, code int) {
	vec.With("hit").Inc()
	vec.With(okState).Inc()
	vec.With(codeLabel(code)).Inc()
}

// codeLabel is a fold helper by the repo's naming convention: it owns the
// boundedness argument (out-of-range codes collapse to "other").
func codeLabel(code int) string {
	if code < 100 || code > 599 {
		return "other"
	}
	return strconv.Itoa(code)
}

// leak feeds attacker-reachable bytes straight into the label set.
func leak(vec *obs.CounterVec, name string) {
	vec.With(name).Inc() // want "metric label value is not statically bounded"
}

// formatted is the subtler spelling of the same leak.
func formatted(vec *obs.CounterVec, shard int) {
	vec.With("shard-" + strconv.Itoa(shard)).Inc() // want "metric label value is not statically bounded"
}

// leakAllowed documents a bounded-for-invisible-reasons site; the doc
// steers toward a *Label helper, but the allow hatch must still work.
func leakAllowed(vec *obs.CounterVec, name string) {
	//lint:allow metriclabel fixture caller enumerates a fixed set
	vec.With(name).Inc()
}
