// Package fixture plants poolescape violations: sync.Pool Gets whose
// pooled value leaves the function with no Put to balance them.
package fixture

import "sync"

type ws struct{ buf []float64 }

var pool = sync.Pool{New: func() any { return new(ws) }}

// Balanced: the idiomatic deferred Put.
func balanced() int {
	w := pool.Get().(*ws)
	defer pool.Put(w)
	return len(w.buf)
}

// Balanced: the Put lives inside a deferred closure.
func deferredClosure() int {
	w := pool.Get().(*ws)
	defer func() { pool.Put(w) }()
	return len(w.buf)
}

// Leak: the workspace escapes to the caller with no Put anywhere here.
func leak() *ws {
	return pool.Get().(*ws) // want "pool.Get has no matching pool.Put in this function"
}

// Leak: taken and abandoned.
func abandon() int {
	w := pool.Get().(*ws) // want "pool.Get has no matching pool.Put in this function"
	return cap(w.buf)
}

// An acquire-helper that hands ownership out on purpose, with the
// annotation naming who releases.
func acquire() *ws {
	//lint:allow poolescape released by callers via release()
	return pool.Get().(*ws)
}

func release(w *ws) { pool.Put(w) }

type holder struct{ p sync.Pool }

// Field-pool Get with no matching Put on the same pool expression.
func (h *holder) take() *ws {
	return h.p.Get().(*ws) // want "h.p.Get has no matching h.p.Put in this function"
}

// Field-pool balanced.
func (h *holder) use() int {
	w := h.p.Get().(*ws)
	defer h.p.Put(w)
	return len(w.buf)
}
