// Package fixture plants detrange violations: map ranges on
// output-producing paths, plus the two shapes the analyzer must accept
// (collect-then-sort, and an explicit allow annotation).
package fixture

import (
	"fmt"
	"slices"
	"sort"
)

// Plain range over a map feeding output: nondeterministic bytes.
func emit(m map[string]int) {
	for k, v := range m { // want "range over map m in an output-producing package"
		fmt.Println(k, v)
	}
}

// The canonical deterministic idiom: collect keys, sort, index.
func emitSorted(m map[string]int) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Println(k, m[k])
	}
}

// slices.Sort counts as sorting too.
func emitSlicesSorted(m map[int]string) {
	var keys []int
	for k := range m {
		keys = append(keys, k)
	}
	slices.Sort(keys)
	for _, k := range keys {
		fmt.Println(m[k])
	}
}

// Collecting without sorting is still nondeterministic.
func collectUnsorted(m map[string]bool) []string {
	var keys []string
	for k := range m { // want "range over map m in an output-producing package"
		keys = append(keys, k)
	}
	return keys
}

// Key ignored, value used: not the collect idiom.
func sumValues(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want "range over map m in an output-producing package"
		total += v
	}
	return total
}

// An order-insensitive use a human vouches for.
func countAllowed(m map[string]int) int {
	n := 0
	//lint:allow detrange order-insensitive count, no output depends on order
	for range m {
		n++
	}
	return n
}
