// The ctxflow fixture: blocking compute calls need a cancellation signal
// in scope, fresh root contexts are banned mid-stack, and a ctx
// parameter must come first. Checked under the in-scope import path
// nanometer/internal/serve.
package fixture

import (
	"context"
	"net/http"

	"nanometer/internal/mathx"
)

// orphanSolve calls a blocking solver with no ctx anywhere: the core
// violation class.
func orphanSolve(a [][]float64, b []float64) ([]float64, error) {
	return mathx.SolveDense(a, b) // want "mathx.SolveDense can block but no cancellation signal is in scope"
}

// ctxSolve has the signal in scope: clean.
func ctxSolve(ctx context.Context, a [][]float64, b []float64) ([]float64, error) {
	_ = ctx
	return mathx.SolveDense(a, b)
}

// handlerSolve derives its signal from the request: clean.
func handlerSolve(w http.ResponseWriter, r *http.Request, a [][]float64, b []float64) {
	_, _ = mathx.SolveDense(a, b)
}

// closureSolve inherits the signal from the enclosing handler: clean.
func closureSolve(ctx context.Context, a [][]float64, b []float64) func() {
	return func() {
		_, _ = mathx.SolveDense(a, b)
	}
}

// freshRoot manufactures a context mid-stack instead of accepting its
// caller's: banned.
func freshRoot() context.Context {
	return context.Background() // want "context.Background\\(\\) is banned here"
}

// freshTODO is the same violation through the other constructor.
func freshTODO() context.Context {
	return context.TODO() // want "context.TODO\\(\\) is banned here"
}

// lifecycleRoot owns its own shutdown, which is the documented annotation
// case: suppressed with a reason.
func lifecycleRoot() (context.Context, context.CancelFunc) {
	//lint:allow ctxflow fixture lifecycle root owns its shutdown
	return context.WithCancel(context.Background())
}

// buriedCtx hides the context behind another parameter: rule 3.
func buriedCtx(n int, ctx context.Context) { // want "context.Context must be the first parameter"
	_ = n
	_ = ctx
}
