// The goexit fixture: every spawned goroutine must carry a provable exit
// path — a signal-channel receive, a bounded loop, or a same-function
// WaitGroup/close pairing — or an explicit allow.
package fixture

import (
	"context"
	"sync"
)

// spin is the violation class: an unbounded loop with no exit signal.
func spin() {
	go func() { // want "goroutine has an unbounded loop and no provable exit path"
		for {
		}
	}()
}

// watched selects on ctx.Done inside the loop: clean.
func watched(ctx context.Context, work chan int) {
	go func() {
		for {
			select {
			case <-ctx.Done():
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

// doneChan uses the repo's plain done-channel convention: clean.
func doneChan(done chan struct{}, work chan int) {
	go func() {
		for {
			select {
			case <-done:
				return
			case w := <-work:
				_ = w
			}
		}
	}()
}

// bounded loops terminate when their calls do: no hazard, clean.
func bounded(items []int) {
	go func() {
		for range items {
		}
	}()
}

// paired ranges a channel the spawner closes, and the spawner also Waits
// on the WaitGroup the body Dones: either pairing alone suffices.
func paired(items []int) {
	ch := make(chan int)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for v := range ch {
			_ = v
		}
	}()
	for _, v := range items {
		ch <- v
	}
	close(ch)
	wg.Wait()
}

// named spawns a same-package function: the analyzer proves the exit
// through its body (drain selects on its done channel).
func named(done chan struct{}) {
	go drain(done)
}

func drain(done chan struct{}) {
	for {
		select {
		case <-done:
			return
		}
	}
}

// opaque spawns a function value the analyzer cannot see into: it must be
// annotated.
func opaque(f func()) {
	go f() // want "goroutine body is outside this package: exit cannot be proved"
}

// opaqueAllowed is the annotated version of the same shape.
func opaqueAllowed(f func()) {
	//lint:allow goexit fixture callback documented to return promptly
	go f()
}

// spinAllowed documents a deliberate run-to-completion goroutine.
func spinAllowed(n *int) {
	//lint:allow goexit fixture burn-in loop exits with the process
	go func() {
		for {
			*n++
		}
	}()
}
