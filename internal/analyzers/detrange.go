package analyzers

import (
	"go/ast"
	"go/types"
)

// Detrange guards the golden-byte determinism of every output-producing
// package: Go map iteration order is deliberately randomized, so a `range`
// over a map anywhere on a path that renders bytes (text/JSON/CSV
// encoders, the metrics registry, HTTP responses) can scramble output
// between runs — exactly the class of bug the jobs=1-vs-8 golden tests
// exist to catch, moved to compile time.
//
// The one iteration shape that is deterministic by construction is
// collect-then-sort: a loop whose body only appends the keys to a slice
// that the same function later sorts. That shape is recognized and
// allowed; everything else needs a `//lint:allow detrange <reason>`.
var Detrange = &Analyzer{
	Name: "detrange",
	Doc: "flags range over a map in output-producing packages unless the " +
		"keys are collected into a slice that is demonstrably sorted afterwards",
	Scope: DetrangeScope,
	Run:   runDetrange,
}

// DetrangeScope is the set of packages whose bytes reach users: the
// encoders, the typed result layer, the artifact registry, the HTTP
// daemon, and the metrics registry. cmd/nanolint applies detrange to
// these; the other analyzers run everywhere.
var DetrangeScope = []string{
	"nanometer/internal/render",
	"nanometer/internal/result",
	"nanometer/internal/repro",
	"nanometer/internal/serve",
	"nanometer/internal/obs",
}

func runDetrange(pass *Pass) error {
	for _, file := range pass.Files {
		// Walk with an explicit stack of enclosing function bodies so a
		// flagged loop can be matched against sort calls in its function.
		var stack []ast.Node
		ast.Inspect(file, func(n ast.Node) bool {
			if n == nil {
				stack = stack[:len(stack)-1]
				return true
			}
			stack = append(stack, n)
			rs, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.TypesInfo.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sortedCollectLoop(pass, rs, enclosingFuncBody(stack)) {
				return true
			}
			pass.Reportf(rs.For, "range over map %s in an output-producing package: "+
				"iteration order is randomized; collect the keys, sort them, and index "+
				"the map (or annotate //lint:allow detrange <reason> if order provably "+
				"cannot reach any output)", exprString(rs.X))
			return true
		})
	}
	return nil
}

// enclosingFuncBody returns the body of the innermost function (decl or
// literal) on the stack, excluding the node itself at the top.
func enclosingFuncBody(stack []ast.Node) *ast.BlockStmt {
	for i := len(stack) - 2; i >= 0; i-- {
		switch f := stack[i].(type) {
		case *ast.FuncDecl:
			return f.Body
		case *ast.FuncLit:
			return f.Body
		}
	}
	return nil
}

// sortedCollectLoop recognizes the canonical deterministic map-iteration
// idiom:
//
//	for k := range m { keys = append(keys, k) }
//	sort.Strings(keys)            // or sort.Slice/sort.Sort/slices.Sort*
//
// The loop body must be exactly one append of the key into a plain
// variable, the value must be unused, and the same enclosing function must
// sort that variable somewhere after the loop.
func sortedCollectLoop(pass *Pass, rs *ast.RangeStmt, body *ast.BlockStmt) bool {
	key, ok := rs.Key.(*ast.Ident)
	if !ok || key.Name == "_" {
		return false
	}
	if rs.Value != nil {
		if v, ok := rs.Value.(*ast.Ident); !ok || v.Name != "_" {
			return false
		}
	}
	if len(rs.Body.List) != 1 {
		return false
	}
	assign, ok := rs.Body.List[0].(*ast.AssignStmt)
	if !ok || len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return false
	}
	dest, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) != 2 {
		return false
	}
	if fn, ok := call.Fun.(*ast.Ident); !ok || fn.Name != "append" {
		return false
	}
	if arg0, ok := call.Args[0].(*ast.Ident); !ok || arg0.Name != dest.Name {
		return false
	}
	if arg1, ok := call.Args[1].(*ast.Ident); !ok || arg1.Name != key.Name {
		return false
	}
	if body == nil {
		return false
	}
	destObj := pass.TypesInfo.ObjectOf(dest)
	sorted := false
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || sorted || call.Pos() <= rs.End() {
			return !sorted
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok || len(call.Args) == 0 {
			return true
		}
		if pkg.Name != "sort" && pkg.Name != "slices" {
			return true
		}
		if arg, ok := call.Args[0].(*ast.Ident); ok &&
			pass.TypesInfo.ObjectOf(arg) == destObj && destObj != nil {
			sorted = true
		}
		return !sorted
	})
	return sorted
}
