package analyzers

import (
	"go/ast"
	"go/types"
)

// Strictjson generalizes the strict-parse pattern PRs 7 and 9 established
// by hand at the trace/scenario boundaries: JSON that crosses an API
// boundary is decoded with unknown fields rejected and the byte stream
// bounded, so version skew surfaces as a loud parse error instead of
// silently dropped fields, and a hostile peer cannot balloon memory.
//
// In the boundary packages (serve, scenario, trace, store, jobs):
//
//   - every json.NewDecoder must read from a bounded source —
//     bytes.NewReader/NewBuffer or strings.NewReader over already-held
//     bytes, io.LimitReader, or http.MaxBytesReader — never a raw body or
//     stream;
//   - the decoder must call DisallowUnknownFields() in the same function
//     before decoding;
//   - json.Unmarshal is flagged outright: it ignores unknown fields and
//     trailing garbage. Use the strict decoder helper pattern instead, or
//     annotate the rare trusted-input site.
var Strictjson = &Analyzer{
	Name: "strictjson",
	Doc: "requires API-boundary JSON decoding to bound its input and set " +
		"DisallowUnknownFields (json.Unmarshal is flagged as lax)",
	Scope: []string{
		"nanometer/internal/serve",
		"nanometer/internal/scenario",
		"nanometer/internal/trace",
		"nanometer/internal/store",
		"nanometer/internal/jobs",
	},
	Run: runStrictjson,
}

// boundedReaderMakers are the constructors whose result is an acceptable
// decoder source: either the bytes are already in memory (length-checked
// by the caller) or the reader itself enforces a cap.
var boundedReaderMakers = map[string]map[string]bool{
	"bytes":    {"NewReader": true, "NewBuffer": true},
	"strings":  {"NewReader": true},
	"io":       {"LimitReader": true},
	"net/http": {"MaxBytesReader": true},
}

func runStrictjson(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkStrictjsonFunc(pass, fn.Body)
		}
	}
	return nil
}

func checkStrictjsonFunc(pass *Pass, body *ast.BlockStmt) {
	// Pass 1: objects of decoder variables that call DisallowUnknownFields.
	strict := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "DisallowUnknownFields" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok {
			if obj := pass.TypesInfo.Uses[id]; obj != nil {
				strict[obj] = true
			}
		}
		return true
	})

	// Pass 2: every NewDecoder / Unmarshal site.
	ast.Inspect(body, func(n ast.Node) bool {
		// `dec := json.NewDecoder(...)` binds the decoder we can vouch for.
		if assign, ok := n.(*ast.AssignStmt); ok && len(assign.Rhs) == 1 && len(assign.Lhs) == 1 {
			if call, ok := assign.Rhs[0].(*ast.CallExpr); ok && isPkgFunc(pass, call, "encoding/json", "NewDecoder") {
				checkDecoderSource(pass, call)
				id, ok := assign.Lhs[0].(*ast.Ident)
				if !ok {
					return true
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if obj == nil || !strict[obj] {
					pass.Reportf(call.Pos(),
						"json decoder never calls DisallowUnknownFields: unknown "+
							"fields from version skew would be dropped silently")
				}
				return true
			}
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isPkgFunc(pass, call, "encoding/json", "Unmarshal") {
			pass.Reportf(call.Pos(),
				"json.Unmarshal is lax at an API boundary (unknown fields and "+
					"trailing data pass): decode with DisallowUnknownFields and a "+
					"trailing-data check, or annotate //lint:allow strictjson <reason>")
			return true
		}
		// An inline json.NewDecoder(...).Decode(&v) never had the chance
		// to go strict.
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if inner, ok := sel.X.(*ast.CallExpr); ok && isPkgFunc(pass, inner, "encoding/json", "NewDecoder") {
				checkDecoderSource(pass, inner)
				pass.Reportf(inner.Pos(),
					"inline json decoder cannot call DisallowUnknownFields: bind "+
						"it to a variable and go strict")
			}
		}
		return true
	})
}

// checkDecoderSource validates the reader handed to json.NewDecoder.
func checkDecoderSource(pass *Pass, newDecoder *ast.CallExpr) {
	if len(newDecoder.Args) != 1 {
		return
	}
	if call, ok := newDecoder.Args[0].(*ast.CallExpr); ok {
		if fn := calledFunc(pass, call); fn != nil && fn.Pkg() != nil {
			if boundedReaderMakers[fn.Pkg().Path()][fn.Name()] {
				return
			}
		}
	}
	pass.Reportf(newDecoder.Args[0].Pos(),
		"json decoder reads an unbounded stream: wrap the source in "+
			"http.MaxBytesReader/io.LimitReader or decode length-checked "+
			"bytes via bytes.NewReader")
}

func isPkgFunc(pass *Pass, call *ast.CallExpr, pkgPath, name string) bool {
	fn := calledFunc(pass, call)
	return fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == pkgPath && fn.Name() == name
}
