package analyzers_test

import (
	"go/ast"
	"go/parser"
	"go/token"
	"testing"

	"nanometer/internal/analyzers"
	"nanometer/internal/analyzers/atest"
)

// Each fixture plants at least one violation per analyzer, so these tests
// fail in both directions: a gutted analyzer reports nothing where the
// fixture wants a diagnostic, and an over-eager one reports on the clean
// (idiomatic or annotated) shapes.

func TestDetrangeFixture(t *testing.T) {
	// The fixture is checked under an in-scope import path; detrange is
	// scoped to output-producing packages.
	atest.Run(t, analyzers.Detrange, "testdata/detrange", "nanometer/internal/render")
}

func TestSolvecheckFixture(t *testing.T) {
	atest.Run(t, analyzers.Solvecheck, "testdata/solvecheck", "nanometer/internal/fixture")
}

func TestCachekeyFixture(t *testing.T) {
	atest.Run(t, analyzers.Cachekey, "testdata/cachekey", "nanometer/internal/fixture")
}

func TestPoolescapeFixture(t *testing.T) {
	atest.Run(t, analyzers.Poolescape, "testdata/poolescape", "nanometer/internal/fixture")
}

func TestLockguardFixture(t *testing.T) {
	atest.Run(t, analyzers.Lockguard, "testdata/lockguard", "nanometer/internal/fixture")
}

func TestCtxflowFixture(t *testing.T) {
	// Checked under an in-scope import path; ctxflow is scoped to the
	// serving/jobs-era packages.
	atest.Run(t, analyzers.Ctxflow, "testdata/ctxflow", "nanometer/internal/serve")
}

func TestGoexitFixture(t *testing.T) {
	atest.Run(t, analyzers.Goexit, "testdata/goexit", "nanometer/internal/fixture")
}

func TestStrictjsonFixture(t *testing.T) {
	// Checked under an in-scope import path; strictjson is scoped to the
	// API-boundary packages.
	atest.Run(t, analyzers.Strictjson, "testdata/strictjson", "nanometer/internal/serve")
}

func TestMetriclabelFixture(t *testing.T) {
	atest.Run(t, analyzers.Metriclabel, "testdata/metriclabel", "nanometer/internal/fixture")
}

// TestAnalyzerScopes pins the scoped-analyzer contract the nanolint driver
// relies on: each scoped analyzer applies exactly to its listed packages,
// the unscoped ones everywhere.
func TestAnalyzerScopes(t *testing.T) {
	scoped := map[string]bool{}
	for _, a := range analyzers.All() {
		if len(a.Scope) == 0 {
			continue
		}
		scoped[a.Name] = true
		for _, p := range a.Scope {
			if !a.AppliesTo(p) {
				t.Errorf("%s should apply to %s", a.Name, p)
			}
		}
		if a.AppliesTo("nanometer/internal/mathx") {
			t.Errorf("%s should not apply to nanometer/internal/mathx (solver package, outside its boundary scope)", a.Name)
		}
	}
	for _, want := range []string{"detrange", "ctxflow", "strictjson"} {
		if !scoped[want] {
			t.Errorf("%s should be a scoped analyzer", want)
		}
	}
	for _, a := range analyzers.All() {
		if scoped[a.Name] {
			continue
		}
		if !a.AppliesTo("nanometer/internal/mathx") {
			t.Errorf("%s should apply to every package", a.Name)
		}
	}
}

// TestViolationClassesFailLint is the meta-test for the concurrency-era
// analyzers: for each of the five violation classes, a minimal source
// file reintroducing it is run through the FULL suite — the same
// analyzer set `make lint` executes — and must produce at least one
// finding from the expected analyzer. This pins the wiring, not just the
// analyzers: an analyzer dropped from All() fails here even though its
// own fixture test still passes.
func TestViolationClassesFailLint(t *testing.T) {
	cases := []struct {
		analyzer string
		pkgPath  string // in-scope path for the scoped analyzers
		src      string
	}{
		{"lockguard", "nanometer/internal/fixture", `package fixture
import "sync"
type box struct {
	mu sync.Mutex
	n  int // guarded by mu
}
func (b *box) peek() int { return b.n }
`},
		{"ctxflow", "nanometer/internal/serve", `package fixture
import "context"
func root() context.Context { return context.Background() }
`},
		{"goexit", "nanometer/internal/fixture", `package fixture
func spin() {
	go func() {
		for {
		}
	}()
}
`},
		{"strictjson", "nanometer/internal/serve", `package fixture
import "encoding/json"
func lax(data []byte) (v map[string]int, err error) {
	err = json.Unmarshal(data, &v)
	return v, err
}
`},
		{"metriclabel", "nanometer/internal/fixture", `package fixture
import "nanometer/internal/obs"
func leak(vec *obs.CounterVec, name string) { vec.With(name).Inc() }
`},
	}
	exports, err := analyzers.LoadExports(".",
		"./...", "sync", "context", "encoding/json")
	if err != nil {
		t.Fatalf("loading export data: %v", err)
	}
	for _, tc := range cases {
		t.Run(tc.analyzer, func(t *testing.T) {
			fset := token.NewFileSet()
			af, err := parser.ParseFile(fset, tc.analyzer+".go", tc.src, parser.ParseComments)
			if err != nil {
				t.Fatalf("parsing violation source: %v", err)
			}
			imp := analyzers.NewExportImporter(fset, exports)
			pkg, err := analyzers.CheckFiles(fset, imp, tc.pkgPath, []*ast.File{af})
			if err != nil {
				t.Fatalf("typechecking violation source: %v", err)
			}
			diags, err := analyzers.RunAnalyzers(pkg, analyzers.All())
			if err != nil {
				t.Fatalf("running suite: %v", err)
			}
			found := false
			for _, d := range diags {
				if d.Analyzer == tc.analyzer {
					found = true
				}
			}
			if !found {
				t.Errorf("reintroducing the %s violation class produced no %s finding (got %v)",
					tc.analyzer, tc.analyzer, diags)
			}
		})
	}
}

// TestRepoIsClean runs the full suite over the whole module — the same
// gate `make lint` enforces — so a violation introduced anywhere fails
// `go test` too, not just the lint step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint run skipped in -short mode")
	}
	pkgs, err := analyzers.Load(".", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	for _, pkg := range pkgs {
		diags, err := analyzers.RunAnalyzers(pkg, analyzers.All())
		if err != nil {
			t.Fatalf("running suite on %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
