package analyzers_test

import (
	"testing"

	"nanometer/internal/analyzers"
	"nanometer/internal/analyzers/atest"
)

// Each fixture plants at least one violation per analyzer, so these tests
// fail in both directions: a gutted analyzer reports nothing where the
// fixture wants a diagnostic, and an over-eager one reports on the clean
// (idiomatic or annotated) shapes.

func TestDetrangeFixture(t *testing.T) {
	// The fixture is checked under an in-scope import path; detrange is
	// scoped to output-producing packages.
	atest.Run(t, analyzers.Detrange, "testdata/detrange", "nanometer/internal/render")
}

func TestSolvecheckFixture(t *testing.T) {
	atest.Run(t, analyzers.Solvecheck, "testdata/solvecheck", "nanometer/internal/fixture")
}

func TestCachekeyFixture(t *testing.T) {
	atest.Run(t, analyzers.Cachekey, "testdata/cachekey", "nanometer/internal/fixture")
}

func TestPoolescapeFixture(t *testing.T) {
	atest.Run(t, analyzers.Poolescape, "testdata/poolescape", "nanometer/internal/fixture")
}

// TestDetrangeScope pins the scoped-analyzer contract the nanolint driver
// relies on: detrange applies exactly to the output-producing packages,
// the other analyzers everywhere.
func TestDetrangeScope(t *testing.T) {
	for _, p := range analyzers.DetrangeScope {
		if !analyzers.Detrange.AppliesTo(p) {
			t.Errorf("Detrange should apply to %s", p)
		}
	}
	if analyzers.Detrange.AppliesTo("nanometer/internal/mathx") {
		t.Error("Detrange should not apply to nanometer/internal/mathx (solver package, no output bytes)")
	}
	for _, a := range analyzers.All() {
		if a == analyzers.Detrange {
			continue
		}
		if !a.AppliesTo("nanometer/internal/mathx") {
			t.Errorf("%s should apply to every package", a.Name)
		}
	}
}

// TestRepoIsClean runs the full suite over the whole module — the same
// gate `make lint` enforces — so a violation introduced anywhere fails
// `go test` too, not just the lint step.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-module lint run skipped in -short mode")
	}
	pkgs, err := analyzers.Load(".", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded zero packages")
	}
	for _, pkg := range pkgs {
		diags, err := analyzers.RunAnalyzers(pkg, analyzers.All())
		if err != nil {
			t.Fatalf("running suite on %s: %v", pkg.Path, err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
		}
	}
}
