// Package analyzers is the repo's custom lint layer: four project-specific
// static analyzers that turn invariants the test suite enforces dynamically
// (golden-byte determinism, never-dropped solver errors, cache-key
// coverage, pooled-workspace discipline) into compile-time gates. The
// analyzers run from cmd/nanolint (wired into `make lint`, `make verify`,
// and CI) and are modeled on golang.org/x/tools/go/analysis — Analyzer,
// Pass, Reportf — but implemented on the standard library alone
// (go/ast + go/types + export data from `go list -export`), because this
// module deliberately has no external dependencies.
//
// Suppression: a finding can be silenced with a `//lint:allow <name>
// <reason>` comment on the flagged line or the line directly above it. The
// reason is mandatory by policy (reviewed, not machine-enforced): every
// allow marks a place where a human vouches that the invariant holds for a
// reason the analyzer cannot see.
package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"regexp"
	"sort"
)

// Analyzer is one named check. Scope, when non-nil, restricts the packages
// the driver applies the check to (by exact import path); nil means every
// package.
type Analyzer struct {
	Name  string
	Doc   string
	Scope []string
	Run   func(*Pass) error
}

// All returns the full nanolint suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		Detrange, Solvecheck, Cachekey, Poolescape,
		Lockguard, Ctxflow, Goexit, Strictjson, Metriclabel,
	}
}

// AppliesTo reports whether the analyzer should run on the package with
// the given import path.
func (a *Analyzer) AppliesTo(pkgPath string) bool {
	if a.Scope == nil {
		return true
	}
	for _, p := range a.Scope {
		if p == pkgPath {
			return true
		}
	}
	return false
}

// Diagnostic is one finding: a position and a message. The analyzer name
// travels alongside so drivers can print it (the CI failure message
// contract).
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags   []Diagnostic
	allowed map[string]map[int][]string // file → line → allowed analyzer names
}

// Reportf records a finding at pos unless a `//lint:allow` comment for
// this analyzer covers the position.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.suppressed(position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

var allowRe = regexp.MustCompile(`^//\s*lint:allow\s+([A-Za-z0-9_,]+)`)

// parseAllowDirective parses a `//lint:allow name1,name2 reason` comment
// and returns the suppressed analyzer names. ok is false when the comment
// is not an allow directive (or names nothing). The function is total over
// arbitrary comment bytes — FuzzAllowDirective pins that, plus the
// round-trip property that re-rendering the names parses back unchanged.
func parseAllowDirective(text string) (names []string, ok bool) {
	m := allowRe.FindStringSubmatch(text)
	if m == nil {
		return nil, false
	}
	names = splitNames(m[1])
	return names, len(names) > 0
}

// guardRe matches a whole-line `// guarded by <field>` field annotation
// (optional trailing period). The guard must be a plain identifier naming a
// sibling mutex field — lockguard validates the sibling exists.
var guardRe = regexp.MustCompile(`^//\s*guarded by\s+([A-Za-z_][A-Za-z0-9_]*)\s*\.?\s*$`)

// parseGuardDirective parses a `// guarded by mu` field comment, returning
// the guard field name. Like parseAllowDirective it must never panic on
// hostile bytes and accepted forms must round-trip (FuzzAllowDirective).
func parseGuardDirective(text string) (guard string, ok bool) {
	m := guardRe.FindStringSubmatch(text)
	if m == nil {
		return "", false
	}
	return m[1], true
}

// buildAllowIndex scans every comment for lint:allow markers once per pass.
func (p *Pass) buildAllowIndex() {
	p.allowed = map[string]map[int][]string{}
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				names, ok := parseAllowDirective(c.Text)
				if !ok {
					continue
				}
				pos := p.Fset.Position(c.Slash)
				byLine := p.allowed[pos.Filename]
				if byLine == nil {
					byLine = map[int][]string{}
					p.allowed[pos.Filename] = byLine
				}
				byLine[pos.Line] = append(byLine[pos.Line], names...)
			}
		}
	}
}

func splitNames(s string) []string {
	var out []string
	start := 0
	for i := 0; i <= len(s); i++ {
		if i == len(s) || s[i] == ',' {
			if i > start {
				out = append(out, s[start:i])
			}
			start = i + 1
		}
	}
	return out
}

// suppressed reports whether an allow comment for this analyzer sits on
// the diagnostic's line or the line directly above it.
func (p *Pass) suppressed(pos token.Position) bool {
	byLine := p.allowed[pos.Filename]
	if byLine == nil {
		return false
	}
	for _, line := range []int{pos.Line, pos.Line - 1} {
		for _, name := range byLine[line] {
			if name == p.Analyzer.Name || name == "all" {
				return true
			}
		}
	}
	return false
}

// RunAnalyzers applies every analyzer whose scope covers the package and
// returns the findings sorted by position.
func RunAnalyzers(pkg *Package, as []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range as {
		if !a.AppliesTo(pkg.Path) {
			continue
		}
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Syntax,
			Pkg:       pkg.Types,
			TypesInfo: pkg.TypesInfo,
		}
		pass.buildAllowIndex()
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
		}
		diags = append(diags, pass.diags...)
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags, nil
}
