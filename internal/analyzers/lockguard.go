package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// Lockguard enforces annotation-declared lock discipline: a struct field
// carrying a `// guarded by <mu>` comment may only be read or written while
// the named sibling mutex is held on the same receiver chain. Holding is
// established intra-procedurally by the facts walker in facts.go
// (`x.mu.Lock()` … `x.mu.Unlock()`, with `defer x.mu.Unlock()` holding to
// exit), or by the repo's caller-holds convention: a function whose name
// ends in "Locked" is entitled to its receiver's guarded fields — its
// contract says the caller already locked.
//
// Composite-literal field keys (`&Job{state: StateQueued}`) are not
// accesses: construction happens before the value is shared. Accesses the
// analyzer cannot prove but a human can (publication via another mutex's
// happens-before edge, single-goroutine setup) take a
// `//lint:allow lockguard <reason>`.
var Lockguard = &Analyzer{
	Name: "lockguard",
	Doc: "flags reads/writes of `// guarded by <mu>` struct fields outside " +
		"a region that holds the lock (or a *Locked caller-holds function)",
	Run: runLockguard,
}

// guardedField records the guard declared for one struct field.
type guardedField struct {
	guard string // sibling field name ("mu")
	owner string // struct description for messages
}

func runLockguard(pass *Pass) error {
	guards := collectGuards(pass)
	if len(guards) == 0 {
		return nil
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkFuncLocks(pass, guards, fn)
		}
	}
	return nil
}

// collectGuards scans struct types (named or anonymous) for
// `// guarded by <mu>` field comments, returning field object → guard.
// A guard that does not name a sibling mutex field is itself reported —
// a typo'd annotation must not silently disable the check.
func collectGuards(pass *Pass) map[types.Object]guardedField {
	guards := map[types.Object]guardedField{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok || st.Fields == nil {
				return true
			}
			for _, field := range st.Fields.List {
				guard, ok := fieldGuard(field)
				if !ok {
					continue
				}
				if !hasMutexSibling(pass, st, guard) {
					pass.Reportf(field.Pos(),
						"`// guarded by %s` names no sibling sync.Mutex/RWMutex field", guard)
					continue
				}
				for _, name := range field.Names {
					if obj := pass.TypesInfo.Defs[name]; obj != nil {
						guards[obj] = guardedField{guard: guard}
					}
				}
			}
			return true
		})
	}
	return guards
}

// fieldGuard extracts a guard directive from the field's doc or line
// comments.
func fieldGuard(field *ast.Field) (string, bool) {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			if guard, ok := parseGuardDirective(c.Text); ok {
				return guard, true
			}
		}
	}
	return "", false
}

func hasMutexSibling(pass *Pass, st *ast.StructType, guard string) bool {
	for _, field := range st.Fields.List {
		for _, name := range field.Names {
			if name.Name != guard {
				continue
			}
			if obj := pass.TypesInfo.Defs[name]; obj != nil && isMutexType(obj.Type()) {
				return true
			}
		}
	}
	return false
}

// checkFuncLocks walks one function with lock-held tracking and reports
// guarded-field accesses made without the guard.
func checkFuncLocks(pass *Pass, guards map[types.Object]guardedField, fn *ast.FuncDecl) {
	callerHolds := strings.HasSuffix(fn.Name.Name, "Locked")
	recv := receiverName(fn)
	w := &lockWalker{
		pass: pass,
		access: func(sel *ast.SelectorExpr, held lockSet) {
			obj := pass.TypesInfo.Uses[sel.Sel]
			gf, ok := guards[obj]
			if !ok {
				return
			}
			base := types.ExprString(sel.X)
			if held[base+"."+gf.guard] {
				return
			}
			if callerHolds && recv != "" && base == recv {
				return
			}
			pass.Reportf(sel.Pos(),
				"%s.%s is guarded by %s.%s, which is not held here "+
					"(lock it, use a *Locked caller-holds function, or annotate //lint:allow lockguard <reason>)",
				base, sel.Sel.Name, base, gf.guard)
		},
	}
	w.walkBody(fn.Body)
}

func receiverName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 || len(fn.Recv.List[0].Names) == 0 {
		return ""
	}
	return fn.Recv.List[0].Names[0].Name
}
