package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
)

// exprString renders an expression for diagnostics (and for poolescape's
// lexical pool matching: two Gets/Puts pair when their receiver
// expressions print identically).
func exprString(x ast.Expr) string { return types.ExprString(x) }

// basicLitString unquotes a string literal.
func basicLitString(lit *ast.BasicLit) (string, error) {
	if lit.Kind != token.STRING {
		return "", fmt.Errorf("not a string literal")
	}
	return strconv.Unquote(lit.Value)
}
