package analyzers

import (
	"go/ast"
	"go/types"
)

// Poolescape protects the zero-alloc hot paths PR 3 built on sync.Pool:
// a pooled solver workspace that is taken with Get but never returned with
// Put degrades the pool to an allocator — the benchmarks still pass
// functionally while the steady-state alloc count silently climbs. The
// rule is lexical and local by design: every (*sync.Pool).Get in a
// function must be paired with a Put on the same pool somewhere in that
// function (a deferred Put, or one inside a deferred closure, counts).
// Acquire-helpers that intentionally hand the pooled value to their caller
// carry a `//lint:allow poolescape <reason>` naming who is responsible for
// the Put.
var Poolescape = &Analyzer{
	Name: "poolescape",
	Doc: "flags sync.Pool.Get results that leave the function without a " +
		"matching Put on the same pool",
	Run: runPoolescape,
}

func runPoolescape(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkPoolBalance(pass, fd.Body)
		}
	}
	return nil
}

// checkPoolBalance collects every Get and Put on sync.Pool values in the
// function body (including nested closures — a deferred
// `func() { pool.Put(x) }()` is the idiomatic release) and reports Gets
// whose pool expression has no Put anywhere in the body.
func checkPoolBalance(pass *Pass, body *ast.BlockStmt) {
	type get struct {
		pos  ast.Node
		pool string
	}
	var gets []get
	puts := map[string]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if !isSyncPool(pass, sel.X) {
			return true
		}
		pool := exprString(sel.X)
		switch sel.Sel.Name {
		case "Get":
			gets = append(gets, get{pos: call, pool: pool})
		case "Put":
			puts[pool] = true
		}
		return true
	})

	for _, g := range gets {
		if puts[g.pool] {
			continue
		}
		pass.Reportf(g.pos.Pos(), "%s.Get has no matching %s.Put in this function: "+
			"the pooled workspace escapes and the zero-alloc path degrades to allocation "+
			"(defer the Put, or annotate //lint:allow poolescape <who puts it back>)",
			g.pool, g.pool)
	}
}

// isSyncPool reports whether the expression's type is sync.Pool or
// *sync.Pool.
func isSyncPool(pass *Pass, x ast.Expr) bool {
	t := pass.TypesInfo.TypeOf(x)
	if t == nil {
		return false
	}
	named, ok := derefType(t).(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Pool" && obj.Pkg() != nil && obj.Pkg().Path() == "sync"
}
