package analyzers

import (
	"strings"
	"testing"
	"unicode"
)

// FuzzAllowDirective fuzzes the two comment-directive parsers the
// suppression and lockguard machinery hang off: parseAllowDirective
// (`//lint:allow name1,name2 reason`) and parseGuardDirective
// (`// guarded by mu`). Two properties:
//
//  1. Totality: arbitrary comment bytes never panic either parser (the
//     harness itself is the assertion — a panic fails the fuzz run).
//  2. Round-trip: whatever a parser accepts, re-rendered in canonical
//     form, parses back to the identical value. A parser that accepts a
//     name it cannot re-parse would make a suppression silently
//     unaddressable.
func FuzzAllowDirective(f *testing.F) {
	f.Add("//lint:allow ctxflow queue is a lifecycle root")
	f.Add("// lint:allow lockguard,goexit reason text")
	f.Add("//lint:allow ,,,")
	f.Add("// guarded by mu")
	f.Add("//guarded by labelMu.")
	f.Add("// guarded by 0bad")
	f.Add("// want \"something\"")
	f.Add("//lint:allow")
	f.Add("///lint:allow all x")
	f.Add(string([]byte{0x00, 0xff, '/', '/', 'l'}))
	f.Fuzz(func(t *testing.T, text string) {
		names, ok := parseAllowDirective(text)
		if ok {
			if len(names) == 0 {
				t.Fatalf("parseAllowDirective(%q) accepted but returned no names", text)
			}
			for _, n := range names {
				if n == "" || strings.ContainsRune(n, ',') {
					t.Fatalf("parseAllowDirective(%q) returned malformed name %q", text, n)
				}
				for _, r := range n {
					if !unicode.IsLetter(r) && !unicode.IsDigit(r) && r != '_' {
						t.Fatalf("parseAllowDirective(%q) returned name %q with unexpected rune %q", text, n, r)
					}
				}
			}
			// Round-trip: the canonical rendering of the accepted names
			// must parse back to the same list.
			again, ok2 := parseAllowDirective("//lint:allow " + strings.Join(names, ",") + " reason")
			if !ok2 || strings.Join(again, ",") != strings.Join(names, ",") {
				t.Fatalf("parseAllowDirective round-trip: %v -> %v (ok=%v)", names, again, ok2)
			}
		}

		guard, gok := parseGuardDirective(text)
		if gok {
			if guard == "" {
				t.Fatalf("parseGuardDirective(%q) accepted but returned empty guard", text)
			}
			again, ok2 := parseGuardDirective("// guarded by " + guard)
			if !ok2 || again != guard {
				t.Fatalf("parseGuardDirective round-trip: %q -> %q (ok=%v)", guard, again, ok2)
			}
		}
	})
}
