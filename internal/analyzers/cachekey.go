package analyzers

import (
	"go/ast"
	"go/types"
)

// Cachekey is the static complement to repro's reflection guard
// (TestComputeKeyCoversOptions): every field of an Options struct that has
// a computeKey method must be classified — either compute-side (listed in
// computeSideFields AND actually read by computeKey, so the result cache
// reacts to it) or encode-only (listed in encodeOnlyFields and NOT read by
// computeKey, so every encoding of one artifact shares one compute). An
// unclassified field is how the cache silently serves stale results after
// someone adds an option; a misclassified one either poisons the cache or
// splinters it. The reflection guard catches this at test time; cachekey
// reports it at the field declaration, before a test ever runs.
var Cachekey = &Analyzer{
	Name: "cachekey",
	Doc: "every Options field must be classified compute-side (read by " +
		"computeKey) or encode-only, at the field declaration",
	Run: runCachekey,
}

func runCachekey(pass *Pass) error {
	opts := lookupOptionsStruct(pass)
	if opts == nil {
		return nil // package has no Options+computeKey pair — nothing to enforce
	}
	read := computeKeyFieldReads(pass, opts.typ)
	computeSide := classificationKeys(pass, "computeSideFields")
	encodeOnly := classificationKeys(pass, "encodeOnlyFields")

	for _, f := range opts.fields {
		name := f.Names[0].Name
		pos := f.Names[0].Pos()
		inCompute := computeSide[name]
		inEncode := encodeOnly[name]
		switch {
		case inCompute && inEncode:
			pass.Reportf(pos, "Options.%s is classified both compute-side and encode-only", name)
		case inCompute && !read[name]:
			pass.Reportf(pos, "Options.%s is classified compute-side but computeKey never reads it: "+
				"the cache would serve stale results when it changes", name)
		case inEncode && read[name]:
			pass.Reportf(pos, "Options.%s is classified encode-only but computeKey reads it: "+
				"encodings would stop sharing one compute", name)
		case !inCompute && !inEncode:
			pass.Reportf(pos, "Options.%s is unclassified: add it to computeSideFields (and computeKey) "+
				"or to encodeOnlyFields, in the same change that adds the field", name)
		}
	}
	return nil
}

type optionsStruct struct {
	typ    types.Type
	fields []*ast.Field
}

// lookupOptionsStruct finds a struct type named Options that has a
// computeKey method declared in this package. Packages without the pair
// are out of scope.
func lookupOptionsStruct(pass *Pass) *optionsStruct {
	obj := pass.Pkg.Scope().Lookup("Options")
	if obj == nil {
		return nil
	}
	tn, ok := obj.(*types.TypeName)
	if !ok {
		return nil
	}
	if !hasComputeKeyMethod(tn) {
		return nil
	}
	// Locate the struct declaration for field positions.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok || ts.Name.Name != "Options" {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					return nil
				}
				var fields []*ast.Field
				for _, f := range st.Fields.List {
					if len(f.Names) > 0 {
						fields = append(fields, f)
					}
				}
				return &optionsStruct{typ: tn.Type(), fields: fields}
			}
		}
	}
	return nil
}

func hasComputeKeyMethod(tn *types.TypeName) bool {
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == "computeKey" {
			return true
		}
	}
	return false
}

// computeKeyFieldReads returns the set of Options field names read (via
// any selector) inside the computeKey method body.
func computeKeyFieldReads(pass *Pass, optsType types.Type) map[string]bool {
	read := map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Name.Name != "computeKey" || fd.Recv == nil || fd.Body == nil {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				sel, ok := n.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				s, ok := pass.TypesInfo.Selections[sel]
				if !ok || s.Kind() != types.FieldVal {
					return true
				}
				if types.Identical(derefType(s.Recv()), optsType) {
					read[sel.Sel.Name] = true
				}
				return true
			})
		}
	}
	return read
}

func derefType(t types.Type) types.Type {
	if p, ok := t.(*types.Pointer); ok {
		return p.Elem()
	}
	return t
}

// classificationKeys reads the string keys of a package-level
// `var name = map[string]bool{...}` composite literal. The classification
// must live in the package proper (not a _test.go file) so both this
// analyzer and the reflection guard can see it.
func classificationKeys(pass *Pass, name string) map[string]bool {
	keys := map[string]bool{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for i, id := range vs.Names {
					if id.Name != name || i >= len(vs.Values) {
						continue
					}
					cl, ok := vs.Values[i].(*ast.CompositeLit)
					if !ok {
						continue
					}
					for _, elt := range cl.Elts {
						kv, ok := elt.(*ast.KeyValueExpr)
						if !ok {
							continue
						}
						if lit, ok := kv.Key.(*ast.BasicLit); ok {
							if s, err := basicLitString(lit); err == nil {
								keys[s] = true
							}
						}
					}
				}
			}
		}
	}
	return keys
}
