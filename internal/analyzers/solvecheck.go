package analyzers

import (
	"go/ast"
	"go/types"
	"strings"
)

// Solvecheck enforces the solver-error contract PR 1 established: every
// sparse solver reports (x, iters, err), and ErrNotSPD-style failures are
// part of the result, not an afterthought. A call site that discards the
// error — or silently blanks the iteration count, the number that tells
// you a solver is drifting toward its maxIter cliff — reintroduces the
// NaN-propagation failure mode the contract was built to kill.
//
// Flagged callees: the mathx.Solve* family (SolveDense, SolveSOR, SolveCG,
// SolvePCG*, SolveCGW, SolveMG*) and the repro Compute* entry points
// (ComputeAll, ComputeCached, and the compute functions themselves).
var Solvecheck = &Analyzer{
	Name: "solvecheck",
	Doc: "flags call sites that discard the err (or silently drop iters) " +
		"from the mathx solver family and the repro compute entry points",
	Run: runSolvecheck,
}

// solvecheckTargets maps package import path → required callee name
// prefix. A function or method belonging to one of these packages whose
// name starts with the prefix is under contract.
var solvecheckTargets = map[string]string{
	"nanometer/internal/mathx": "Solve",
	"nanometer/internal/repro": "Compute",
}

func runSolvecheck(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				if call, ok := stmt.X.(*ast.CallExpr); ok {
					if name, yes := solverCall(pass, call); yes {
						pass.Reportf(call.Pos(),
							"result of %s discarded: the solver error (and iteration count) must be handled", name)
					}
				}
			case *ast.GoStmt:
				if name, yes := solverCall(pass, stmt.Call); yes {
					pass.Reportf(stmt.Call.Pos(),
						"result of %s discarded by go statement: the solver error must be handled", name)
				}
			case *ast.DeferStmt:
				if name, yes := solverCall(pass, stmt.Call); yes {
					pass.Reportf(stmt.Call.Pos(),
						"result of %s discarded by defer statement: the solver error must be handled", name)
				}
			case *ast.AssignStmt:
				checkSolverAssign(pass, stmt)
			}
			return true
		})
	}
	return nil
}

// checkSolverAssign inspects `x, iters, err := m.SolveCG(...)`-shaped
// statements for blanked results.
func checkSolverAssign(pass *Pass, assign *ast.AssignStmt) {
	if len(assign.Rhs) != 1 {
		return
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok {
		return
	}
	name, yes := solverCall(pass, call)
	if !yes {
		return
	}
	sig := callSignature(pass, call)
	if sig == nil || len(assign.Lhs) != sig.Results().Len() {
		return
	}
	for i := 0; i < sig.Results().Len(); i++ {
		id, ok := assign.Lhs[i].(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		res := sig.Results().At(i)
		switch {
		case isErrorType(res.Type()):
			pass.Reportf(assign.Pos(),
				"err result of %s assigned to _: solver failures (e.g. ErrNotSPD) must never be ignored", name)
		case isItersResult(sig, i):
			pass.Reportf(assign.Pos(),
				"iters result of %s silently dropped: record or inspect the iteration count "+
					"(or annotate //lint:allow solvecheck <reason>)", name)
		}
	}
}

// solverCall reports whether the call's callee is under the solver-error
// contract, returning a printable name.
func solverCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return "", false
	}
	obj, ok := pass.TypesInfo.Uses[id]
	if !ok {
		return "", false
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", false
	}
	prefix, ok := solvecheckTargets[fn.Pkg().Path()]
	if !ok || !strings.HasPrefix(fn.Name(), prefix) {
		return "", false
	}
	return fn.Pkg().Name() + "." + fn.Name(), true
}

func callSignature(pass *Pass, call *ast.CallExpr) *types.Signature {
	t := pass.TypesInfo.TypeOf(call.Fun)
	if t == nil {
		return nil
	}
	sig, _ := t.(*types.Signature)
	return sig
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isItersResult reports whether result i is the iteration count of a
// (x, iters, err)-shaped solver signature: an int sitting directly before
// the trailing error.
func isItersResult(sig *types.Signature, i int) bool {
	res := sig.Results()
	if res.Len() < 2 || i != res.Len()-2 {
		return false
	}
	if !isErrorType(res.At(res.Len() - 1).Type()) {
		return false
	}
	basic, ok := res.At(i).Type().(*types.Basic)
	return ok && basic.Kind() == types.Int
}
