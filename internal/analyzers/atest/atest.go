// Package atest is a standard-library stand-in for
// golang.org/x/tools/go/analysis/analysistest: it type-checks a fixture
// directory against the real module and standard library (export data from
// one shared `go list -export -deps` run) and compares an analyzer's
// diagnostics against `// want "regexp"` annotations in the fixture
// source. A fixture line with a want annotation must produce a matching
// diagnostic, and every diagnostic must land on a line that wants it — so
// each fixture fails in both directions: without the analyzer (nothing is
// reported where violations are planted) and with an over-eager one
// (reports appear on clean lines).
package atest

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"nanometer/internal/analyzers"
)

// exports is the shared import-path → export-data index, built once per
// test binary. The closure of ./... plus the handful of std packages
// fixtures are allowed to import.
var (
	exportsOnce sync.Once
	exports     map[string]string
	exportsErr  error
)

func sharedExports(t *testing.T) map[string]string {
	t.Helper()
	exportsOnce.Do(func() {
		exports, exportsErr = analyzers.LoadExports(".",
			"./...", "sync", "sort", "slices", "strings", "fmt", "errors",
			"context", "bytes", "io", "encoding/json", "net/http", "strconv", "time")
	})
	if exportsErr != nil {
		t.Fatalf("loading export data: %v", exportsErr)
	}
	return exports
}

var wantRe = regexp.MustCompile(`//\s*want\s+"((?:[^"\\]|\\.)*)"`)

// Run type-checks every .go file in dir as one package under the given
// import path (the path matters for scoped analyzers like detrange) and
// checks the analyzer's diagnostics against the fixture's want
// annotations.
func Run(t *testing.T, a *analyzers.Analyzer, dir, pkgPath string) {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}
	fset := token.NewFileSet()
	var files []*ast.File
	type want struct {
		file string
		line int
		re   *regexp.Regexp
		hit  bool
	}
	var wants []*want
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		src, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		af, err := parser.ParseFile(fset, path, src, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture %s: %v", path, err)
		}
		files = append(files, af)
		for i, line := range strings.Split(string(src), "\n") {
			m := wantRe.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			pattern, err := unescapeWant(m[1])
			if err != nil {
				t.Fatalf("%s:%d: bad want annotation: %v", path, i+1, err)
			}
			re, err := regexp.Compile(pattern)
			if err != nil {
				t.Fatalf("%s:%d: bad want regexp: %v", path, i+1, err)
			}
			wants = append(wants, &want{file: path, line: i + 1, re: re})
		}
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	imp := analyzers.NewExportImporter(fset, sharedExports(t))
	pkg, err := analyzers.CheckFiles(fset, imp, pkgPath, files)
	if err != nil {
		t.Fatalf("typechecking fixture: %v", err)
	}
	diags, err := analyzers.RunAnalyzers(pkg, []*analyzers.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, d := range diags {
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == d.Pos.Filename && w.line == d.Pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// unescapeWant handles \" and \\ inside the quoted want pattern.
func unescapeWant(s string) (string, error) {
	var b strings.Builder
	for i := 0; i < len(s); i++ {
		if s[i] != '\\' {
			b.WriteByte(s[i])
			continue
		}
		i++
		if i >= len(s) {
			return "", fmt.Errorf("trailing backslash")
		}
		switch s[i] {
		case '"', '\\':
			b.WriteByte(s[i])
		default:
			// Keep the escape for the regexp engine (\d, \(, …).
			b.WriteByte('\\')
			b.WriteByte(s[i])
		}
	}
	return b.String(), nil
}
