package analyzers

import (
	"go/ast"
	"go/types"
)

// This file is the lightweight intra-procedural facts layer the lockguard
// analyzer builds on: a statement walker that tracks, at every expression
// it visits, which mutexes are provably held. "Provably" is deliberately
// syntactic — a lock is identified by the source spelling of its receiver
// chain (`j.mu`, `primedDrops.mu`), held from a `x.Lock()` / `x.RLock()`
// statement until a non-deferred `x.Unlock()` / `x.RUnlock()`, with
// `defer x.Unlock()` keeping it held to function exit. Control flow is
// handled conservatively:
//
//   - a branch that terminates (return / break / continue / panic) does not
//     leak its lock state into the code after the branch, so the common
//     fast-path shape `mu.Lock(); if ok { mu.Unlock(); return }; ...` keeps
//     the tail protected;
//   - a branch that falls through merges by intersection — any lock it
//     released is treated as released after the join;
//   - locks acquired inside a conditional branch or loop body never
//     escape it;
//   - function literals inherit the current lock set (they run on the
//     caller's stack in every in-repo use: sort.Slice comparators,
//     sync.Map Range callbacks) except when launched by `go` or `defer`,
//     which start from an empty set.
//
// Aliasing (`k := j; k.state`) is invisible to the tracker and reports as
// unguarded; that is the intended bias — re-spell the access through the
// locked receiver or annotate.

// lockSet maps the rendered lock expression ("j.mu") to held.
type lockSet map[string]bool

func (s lockSet) clone() lockSet {
	out := make(lockSet, len(s))
	for k, v := range s {
		out[k] = v
	}
	return out
}

// lockWalker walks one function body and invokes access for every
// selector expression visited, with the lock set held at that point.
type lockWalker struct {
	pass   *Pass
	access func(sel *ast.SelectorExpr, held lockSet)
}

func (w *lockWalker) walkBody(body *ast.BlockStmt) {
	if body == nil {
		return
	}
	w.walkStmts(body.List, lockSet{})
}

// walkStmts processes statements in source order, mutating held.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, held lockSet) {
	for _, s := range stmts {
		w.walkStmt(s, held)
	}
}

func (w *lockWalker) walkStmt(stmt ast.Stmt, held lockSet) {
	switch s := stmt.(type) {
	case nil:
	case *ast.ExprStmt:
		w.walkExpr(s.X, held)
		w.applyLockEffect(s.X, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e, held)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						w.walkExpr(e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		w.walkExpr(s.X, held)
	case *ast.SendStmt:
		w.walkExpr(s.Chan, held)
		w.walkExpr(s.Value, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			w.walkExpr(e, held)
		}
	case *ast.DeferStmt:
		// A deferred Unlock runs at function exit: the lock stays held
		// for the remainder of the body. A deferred literal starts cold —
		// by the time it runs, the locks of this frame may be gone.
		if w.lockEffectKind(s.Call) != 0 {
			return
		}
		w.walkCallParts(s.Call, held, lockSet{})
	case *ast.GoStmt:
		// Arguments are evaluated now (under the current locks); the
		// spawned body runs concurrently and starts with nothing held.
		w.walkCallParts(s.Call, held, lockSet{})
	case *ast.BlockStmt:
		w.walkStmts(s.List, held)
	case *ast.IfStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.walkExpr(s.Cond, held)
		bodyHeld := held.clone()
		w.walkStmts(s.Body.List, bodyHeld)
		if !terminates(s.Body.List) {
			intersect(held, bodyHeld)
		}
		if s.Else != nil {
			elseHeld := held.clone()
			w.walkStmt(s.Else, elseHeld)
			if !stmtTerminates(s.Else) {
				intersect(held, elseHeld)
			}
		}
	case *ast.ForStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Cond != nil {
			w.walkExpr(s.Cond, held)
		}
		bodyHeld := held.clone()
		w.walkStmts(s.Body.List, bodyHeld)
		if s.Post != nil {
			w.walkStmt(s.Post, bodyHeld)
		}
		intersect(held, bodyHeld)
	case *ast.RangeStmt:
		w.walkExpr(s.X, held)
		if s.Key != nil {
			w.walkExpr(s.Key, held)
		}
		if s.Value != nil {
			w.walkExpr(s.Value, held)
		}
		bodyHeld := held.clone()
		w.walkStmts(s.Body.List, bodyHeld)
		intersect(held, bodyHeld)
	case *ast.SwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		if s.Tag != nil {
			w.walkExpr(s.Tag, held)
		}
		w.walkClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		if s.Init != nil {
			w.walkStmt(s.Init, held)
		}
		w.walkStmt(s.Assign, held.clone())
		w.walkClauses(s.Body, held)
	case *ast.SelectStmt:
		w.walkClauses(s.Body, held)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt, held)
	case *ast.CaseClause:
		for _, e := range s.List {
			w.walkExpr(e, held)
		}
		w.walkStmts(s.Body, held)
	case *ast.CommClause:
		if s.Comm != nil {
			w.walkStmt(s.Comm, held)
		}
		w.walkStmts(s.Body, held)
	}
}

// walkClauses runs each case/comm clause on a copy of held and merges the
// fall-through clauses by intersection.
func (w *lockWalker) walkClauses(body *ast.BlockStmt, held lockSet) {
	merged := held.clone()
	for _, c := range body.List {
		clauseHeld := held.clone()
		w.walkStmt(c, clauseHeld)
		var stmts []ast.Stmt
		switch cc := c.(type) {
		case *ast.CaseClause:
			stmts = cc.Body
		case *ast.CommClause:
			stmts = cc.Body
		}
		if !terminates(stmts) {
			intersect(merged, clauseHeld)
		}
	}
	intersect(held, merged)
}

// walkCallParts visits a go/defer call's function and arguments; litHeld is
// the lock set any function literal in the callee position starts with.
func (w *lockWalker) walkCallParts(call *ast.CallExpr, held, litHeld lockSet) {
	if lit, ok := call.Fun.(*ast.FuncLit); ok {
		w.walkStmts(lit.Body.List, litHeld)
	} else {
		w.walkExpr(call.Fun, held)
	}
	for _, a := range call.Args {
		w.walkExpr(a, held)
	}
}

// walkExpr visits an expression tree, reporting selector accesses and
// descending into function literals with the current lock set (synchronous
// callback assumption — go/defer literals are rerouted by walkStmt).
func (w *lockWalker) walkExpr(expr ast.Expr, held lockSet) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.SelectorExpr:
			if w.access != nil {
				w.access(e, held)
			}
			return true
		case *ast.FuncLit:
			w.walkStmts(e.Body.List, held.clone())
			return false
		}
		return true
	})
}

// applyLockEffect mutates held for a statement-level Lock/Unlock call.
func (w *lockWalker) applyLockEffect(expr ast.Expr, held lockSet) {
	call, ok := expr.(*ast.CallExpr)
	if !ok {
		return
	}
	switch kind, key := w.lockEffect(call); kind {
	case 1:
		held[key] = true
	case -1:
		delete(held, key)
	}
}

// lockEffect classifies a call: +1 Lock/RLock, -1 Unlock/RUnlock, 0 other.
// key is the rendered receiver expression ("j.mu").
func (w *lockWalker) lockEffect(call *ast.CallExpr) (kind int, key string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return 0, ""
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		kind = 1
	case "Unlock", "RUnlock":
		kind = -1
	default:
		return 0, ""
	}
	if !isMutexType(w.pass.TypesInfo.TypeOf(sel.X)) {
		return 0, ""
	}
	return kind, types.ExprString(sel.X)
}

func (w *lockWalker) lockEffectKind(call *ast.CallExpr) int {
	kind, _ := w.lockEffect(call)
	return kind
}

// isMutexType reports whether t is sync.Mutex or sync.RWMutex (possibly
// behind a pointer).
func isMutexType(t types.Type) bool {
	if t == nil {
		return false
	}
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || obj.Pkg().Path() != "sync" {
		return false
	}
	return obj.Name() == "Mutex" || obj.Name() == "RWMutex"
}

// intersect drops from dst every lock that branch no longer holds.
func intersect(dst, branch lockSet) {
	for k := range dst {
		if !branch[k] {
			delete(dst, k)
		}
	}
}

// terminates reports whether control cannot fall off the end of stmts:
// the last statement returns, branches away, or panics.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	return stmtTerminates(stmts[len(stmts)-1])
}

func stmtTerminates(stmt ast.Stmt) bool {
	switch s := stmt.(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		return s.Else != nil && terminates(s.Body.List) && stmtTerminates(s.Else)
	case *ast.LabeledStmt:
		return stmtTerminates(s.Stmt)
	}
	return false
}
