package trace

import (
	"context"
	"fmt"
	"math"

	"nanometer/internal/dvfs"
	"nanometer/internal/itrs"
	"nanometer/internal/result"
	"nanometer/internal/thermal"
)

// MaxChunks bounds the incremental snapshots one run emits: long traces
// aggregate many intervals per chunk, so a progress stream is always a few
// hundred lines no matter how many intervals the simulation covers.
const MaxChunks = 512

// Progress is one incremental snapshot of a running simulation — the unit
// of the job service's progress polling and NDJSON streaming, and the
// sample grid of the result figure.
type Progress struct {
	// Done counts intervals completed; Total the trace length.
	Done  int `json:"done"`
	Total int `json:"total"`
	// TimeS is simulated time at the snapshot (Done·dt).
	TimeS float64 `json:"time_s"`
	// TempC and PowerW are the junction temperature and derated
	// dissipation at the snapshot interval.
	TempC  float64 `json:"temp_c"`
	PowerW float64 `json:"power_w"`
	// PeakTempC, MeanPowerW, and ThrottledFraction are running aggregates
	// over [0, Done).
	PeakTempC         float64 `json:"peak_temp_c"`
	MeanPowerW        float64 `json:"mean_power_w"`
	ThrottledFraction float64 `json:"throttled_fraction"`
	// BacklogIntervals is the DVFS governor's undelivered work, in
	// full-speed intervals.
	BacklogIntervals float64 `json:"backlog_intervals"`
}

// Intervals returns the trace length without materializing the series.
func (t *Trace) Intervals() int {
	if t.Generator != nil {
		return t.Generator.Intervals
	}
	return len(t.PowerW)
}

// node resolves the roadmap node the trace simulates against.
func (t *Trace) node() (itrs.Node, error) {
	nm := t.NodeNM
	if nm == 0 {
		nm = DefaultNodeNM
	}
	return itrs.Base().ByNode(nm)
}

// controller builds the DTM policy from the sim spec.
func (t *Trace) controller() thermal.Controller {
	var s SimSpec
	if t.Sim != nil {
		s = *t.Sim
	}
	switch s.Controller {
	case "none":
		return thermal.NoDTM{}
	case "dvs":
		d := thermal.DVS{FreqScale: 0.5, VddScale: 0.8}
		if s.FreqScale != nil {
			d.FreqScale = *s.FreqScale
		}
		if s.VddScale != nil {
			d.VddScale = *s.VddScale
		}
		return d
	default:
		c := thermal.ClockThrottle{DutyCycle: 0.5}
		if s.DutyCycle != nil {
			c.DutyCycle = *s.DutyCycle
		}
		return c
	}
}

// source returns the series iterator and the theoretical-maximum reference
// power (the utilization denominator and the virus level).
func (t *Trace) source(node itrs.Node) (next func() float64, maxW float64) {
	maxW = node.MaxPowerW
	if t.Generator != nil && t.Generator.TheoreticalMaxW != nil {
		maxW = *t.Generator.TheoreticalMaxW
	}
	switch {
	case len(t.PowerW) > 0:
		i := 0
		next = func() float64 { v := t.PowerW[i]; i++; return v }
	case t.Generator.Kind == "virus":
		v := maxW
		next = func() float64 { return v }
	default:
		p := thermal.DefaultWorkload(maxW)
		g := t.Generator
		if g.TypicalFraction != nil {
			p.TypicalFraction = *g.TypicalFraction
		}
		if g.BurstFraction != nil {
			p.BurstFraction = *g.BurstFraction
		}
		if g.BurstLevel != nil {
			p.BurstLevel = *g.BurstLevel
		}
		if g.NoiseFraction != nil {
			p.NoiseFraction = *g.NoiseFraction
		}
		if g.Seed != nil {
			p.Seed = *g.Seed
		}
		next = p.Stream().Next
	}
	return next, maxW
}

// Run simulates the trace: the thermal plant + sensor + DTM controller
// consume the power series interval by interval, while a dvfs.Governor
// side-accounts delivered work, backlog, and the DVFS-vs-clock-gating
// energy ratio over the same demand. onChunk (optional) receives at most
// MaxChunks incremental snapshots, the last one always covering the final
// interval.
//
// ctx is checked every control interval, so cancellation (a job DELETE, a
// dropped stream) stops the simulation within one interval of simulated
// work. A canceled run returns ctx's error and no result. Assertions do
// not error: they become pass/fail checks on the result's claim findings
// (FailedChecks surfaces them).
func (t *Trace) Run(ctx context.Context, onChunk func(Progress)) (*result.Result, error) {
	node, err := t.node()
	if err != nil {
		return nil, fmt.Errorf("trace %s: %w", t.Name, err)
	}
	table, err := dvfs.NewTable(node.DrawnNM, 8, 0.5, 0)
	if err != nil {
		return nil, fmt.Errorf("trace %s: building DVFS table: %w", t.Name, err)
	}
	gov := dvfs.NewGovernor(table)

	cth, trip, hyst := 40.0, node.JunctionTempC-1, 2.0
	if t.Sim != nil {
		if t.Sim.CthJPerC != nil {
			cth = *t.Sim.CthJPerC
		}
		if t.Sim.SensorTripC != nil {
			trip = *t.Sim.SensorTripC
		}
		if t.Sim.HysteresisC != nil {
			hyst = *t.Sim.HysteresisC
		}
	}
	plant := thermal.NewPlant(thermal.Package{ThetaJA: node.ThetaJA, AmbientC: node.AmbientTempC}, cth)
	sensor := &thermal.Sensor{TripC: trip, HysteresisC: hyst}
	ctrl := t.controller()
	next, maxW := t.source(node)

	total := t.Intervals()
	dt := t.DtSeconds
	stride := (total + MaxChunks - 1) / MaxChunks
	if stride < 1 {
		stride = 1
	}

	var (
		peakTempC, peakPowerW, sumPowerW float64
		workDone                         float64
		throttled                        int
		govCur                           = gov.Step(1) // start at the top point
		govWork, govBacklog              float64
		dvfsE, gateE                     float64
		figT, figTemp, figPower          []float64
	)
	emit := func(i int, p float64) {
		pr := Progress{
			Done:             i + 1,
			Total:            total,
			TimeS:            float64(i+1) * dt,
			TempC:            plant.TempC,
			PowerW:           p,
			PeakTempC:        peakTempC,
			MeanPowerW:       sumPowerW / float64(i+1),
			BacklogIntervals: govBacklog,
		}
		pr.ThrottledFraction = float64(throttled) / float64(i+1)
		figT = append(figT, pr.TimeS)
		figTemp = append(figTemp, pr.TempC)
		figPower = append(figPower, pr.PowerW)
		if onChunk != nil {
			onChunk(pr)
		}
	}
	for i := 0; i < total; i++ {
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		default:
		}
		d := next()
		over := sensor.Read(plant.TempC)
		fs, vs := ctrl.Act(over)
		p := d * fs * vs * vs
		plant.Step(p, dt)
		if plant.TempC > peakTempC {
			peakTempC = plant.TempC
		}
		if p > peakPowerW {
			peakPowerW = p
		}
		sumPowerW += p
		workDone += fs
		if fs < 1 || vs < 1 {
			throttled++
		}
		// Governor side-accounting: demand in full-speed work units.
		u := d / maxW
		u = math.Max(0, math.Min(1, u))
		pending := u + govBacklog
		done := math.Min(pending, govCur.RelSpeed)
		govBacklog = pending - done
		govWork += done
		active := 0.0
		if govCur.RelSpeed > 0 {
			active = done / govCur.RelSpeed
		}
		govCur = gov.Step(active)
		// Energy comparison at the demanded utilization (§2.1: voltage
		// scaling vs full-voltage clock gating for the same work).
		pt := table.PointForUtilization(u)
		dvfsE += u * pt.EnergyPerWork
		gateE += u
		if (i+1)%stride == 0 || i == total-1 {
			emit(i, p)
		}
	}

	energyRatio := 0.0
	if gateE > 0 {
		energyRatio = dvfsE / gateE
	}
	res := &result.Result{ID: t.ArtifactID(), Title: t.title()}
	claim := &result.Claim{}
	claim.Num("intervals", float64(total), "").
		Num("dt_seconds", dt, "s").
		Num("node_nm", float64(node.DrawnNM), "nm").
		Str("controller", ctrl.Name()).
		Num("theoretical_max_w", maxW, "W")
	type metric struct {
		key  string
		v    float64
		unit string
	}
	for _, m := range []metric{
		{"peak_temp_c", peakTempC, "C"},
		{"peak_power_w", peakPowerW, "W"},
		{"mean_power_w", sumPowerW / math.Max(1, float64(total)), "W"},
		{"throttled_fraction", float64(throttled) / math.Max(1, float64(total)), ""},
		{"throughput", workDone / math.Max(1, float64(total)), ""},
		{"backlog_intervals", govBacklog, "intervals"},
		{"dvfs_energy_ratio", energyRatio, ""},
	} {
		if a := t.assertFor(m.key); a != nil {
			claim.Checked(m.key, m.v, m.unit, a.Value, a.RelTol)
		} else {
			claim.Num(m.key, m.v, m.unit)
		}
	}
	res.AddClaim(claim)
	res.AddFigure(&result.Figure{
		Name:   "trace_" + t.Name,
		Title:  "junction temperature and derated power over the trace",
		XLabel: "time (s)",
		Series: []result.Series{
			{Name: "junction_temp_c", X: figT, Y: figTemp},
			{Name: "power_w", X: figT, Y: figPower},
		},
	})
	return res, nil
}

func (t *Trace) title() string {
	if t.Title != "" {
		return t.Title
	}
	return "trace simulation: " + t.Name
}

func (t *Trace) assertFor(key string) *Assertion {
	for i := range t.Assert {
		if t.Assert[i].Check == key {
			return &t.Assert[i]
		}
	}
	return nil
}

// FailedChecks lists the failed assertion checks of a trace result — the
// exit-code surface of the CLI and the CI smoke.
func FailedChecks(res *result.Result) []result.Finding {
	var out []result.Finding
	for _, it := range res.Items {
		if it.Claim != nil {
			out = append(out, it.Claim.FailedChecks()...)
		}
	}
	return out
}
