package trace

import (
	"bytes"
	"context"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"nanometer/internal/result"
)

const hungryDoc = `{
	"name": "hungry",
	"dt_seconds": 0.01,
	"generator": {"kind": "workload", "intervals": 4000}
}`

func TestParseValidation(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string // substring of the error; "" = must parse
	}{
		{"minimal generator", hungryDoc, ""},
		{"explicit series", `{"name":"s","dt_seconds":0.01,"power_w":[1,2,3]}`, ""},
		{"virus", `{"name":"v","dt_seconds":0.01,"generator":{"kind":"virus","intervals":10}}`, ""},
		{"bad name", `{"name":"UPPER","dt_seconds":0.01,"power_w":[1]}`, "name"},
		{"unknown field", `{"name":"x","dt_seconds":0.01,"power_w":[1],"nope":1}`, "unknown field"},
		{"trailing data", `{"name":"x","dt_seconds":0.01,"power_w":[1]} {}`, "trailing data"},
		{"no series", `{"name":"x","dt_seconds":0.01}`, "power_w or generator"},
		{"both series", `{"name":"x","dt_seconds":0.01,"power_w":[1],"generator":{"kind":"virus","intervals":1}}`, "mutually exclusive"},
		{"zero dt", `{"name":"x","dt_seconds":0,"power_w":[1]}`, "dt_seconds"},
		{"negative power", `{"name":"x","dt_seconds":0.01,"power_w":[-1]}`, "power_w[0]"},
		{"bad node", `{"name":"x","dt_seconds":0.01,"node_nm":42,"power_w":[1]}`, "node_nm"},
		{"bad kind", `{"name":"x","dt_seconds":0.01,"generator":{"kind":"sine","intervals":1}}`, "kind"},
		{"zero intervals", `{"name":"x","dt_seconds":0.01,"generator":{"kind":"virus","intervals":0}}`, "intervals"},
		{"virus with shaping", `{"name":"x","dt_seconds":0.01,"generator":{"kind":"virus","intervals":1,"seed":2}}`, "virus"},
		{"burst fraction range", `{"name":"x","dt_seconds":0.01,"generator":{"kind":"workload","intervals":1,"burst_fraction":1.5}}`, "burst_fraction"},
		{"bad controller", `{"name":"x","dt_seconds":0.01,"power_w":[1],"sim":{"controller":"magic"}}`, "controller"},
		{"dvs field on throttle", `{"name":"x","dt_seconds":0.01,"power_w":[1],"sim":{"controller":"throttle","freq_scale":0.5}}`, "freq_scale"},
		{"duty on dvs", `{"name":"x","dt_seconds":0.01,"power_w":[1],"sim":{"controller":"dvs","duty_cycle":0.5}}`, "duty_cycle"},
		{"bad check", `{"name":"x","dt_seconds":0.01,"power_w":[1],"assert":[{"check":"vibes","value":1,"rel_tol":0.1}]}`, "vibes"},
		{"zero tol", `{"name":"x","dt_seconds":0.01,"power_w":[1],"assert":[{"check":"peak_temp_c","value":1,"rel_tol":0}]}`, "rel_tol"},
	}
	for _, tc := range cases {
		_, err := Parse([]byte(tc.doc))
		if tc.want == "" {
			if err != nil {
				t.Errorf("%s: unexpected error: %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("%s: error %v, want substring %q", tc.name, err, tc.want)
		}
	}
}

func TestCanonicalRoundTrip(t *testing.T) {
	tr := MustParse(hungryDoc)
	canon := tr.Canonical()
	tr2, err := Parse(canon)
	if err != nil {
		t.Fatalf("reparsing canonical form: %v", err)
	}
	if !bytes.Equal(canon, tr2.Canonical()) {
		t.Fatalf("canonical encoding is not a fixed point:\n%s\n%s", canon, tr2.Canonical())
	}
	if tr.Key() != tr2.Key() {
		t.Fatalf("key changed across the round trip: %s vs %s", tr.Key(), tr2.Key())
	}
}

func TestKeySeparatesContent(t *testing.T) {
	a := MustParse(hungryDoc)
	b := MustParse(strings.Replace(hungryDoc, "4000", "4001", 1))
	if a.Key() == b.Key() {
		t.Fatalf("different traces share key %s", a.Key())
	}
	if a.ArtifactID() != "trace:hungry" {
		t.Fatalf("artifact ID %q", a.ArtifactID())
	}
}

func FuzzTraceParse(f *testing.F) {
	f.Add([]byte(hungryDoc))
	f.Add([]byte(`{"name":"v","dt_seconds":0.01,"generator":{"kind":"virus","intervals":10}}`))
	f.Add([]byte(`{"name":"x","dt_seconds":0.5,"power_w":[0,1,2],"sim":{"controller":"dvs","freq_scale":0.5,"vdd_scale":0.8},"assert":[{"check":"peak_temp_c","value":50,"rel_tol":0.2}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := Parse(data)
		if err != nil {
			return
		}
		canon := tr.Canonical()
		tr2, err := Parse(canon)
		if err != nil {
			t.Fatalf("canonical form does not reparse: %v\n%s", err, canon)
		}
		if !bytes.Equal(canon, tr2.Canonical()) {
			t.Fatalf("canonical encoding is not a fixed point")
		}
	})
}

// TestRunDeterministic pins that one trace simulates to identical findings
// (and identical chunk streams) on every run — the property the content-
// addressed store depends on.
func TestRunDeterministic(t *testing.T) {
	run := func() ([]byte, int) {
		tr := MustParse(hungryDoc)
		chunks := 0
		res, err := tr.Run(context.Background(), func(Progress) { chunks++ })
		if err != nil {
			t.Fatalf("run: %v", err)
		}
		b, err := json.Marshal(res)
		if err != nil {
			t.Fatal(err)
		}
		return b, chunks
	}
	a, ca := run()
	b, cb := run()
	if !bytes.Equal(a, b) {
		t.Fatalf("two runs of one trace differ")
	}
	if ca != cb || ca == 0 || ca > MaxChunks {
		t.Fatalf("chunk counts %d, %d (want equal, in (0, %d])", ca, cb, MaxChunks)
	}
}

// TestRunVirusThrottles pins the physics end of the pipeline: a power-virus
// trace at the 50 nm node must trip the sensor, throttle hard, and hold the
// junction near the trip point, while the ≈75 % workload throttles rarely.
func TestRunVirusThrottles(t *testing.T) {
	virus := MustParse(`{"name":"v","dt_seconds":0.01,"generator":{"kind":"virus","intervals":20000}}`)
	res, err := virus.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("virus run: %v", err)
	}
	find := func(res *result.Result, key string) float64 {
		t.Helper()
		for _, it := range res.Items {
			if it.Claim == nil {
				continue
			}
			if f, ok := it.Claim.Find(key); ok {
				return f.Value
			}
		}
		t.Fatalf("finding %s missing", key)
		return 0
	}
	if tf := find(res, "throttled_fraction"); tf < 0.2 {
		t.Errorf("virus throttled fraction %.3f, want substantial throttling", tf)
	}
	if pk := find(res, "peak_temp_c"); pk < 80 || pk > 95 {
		t.Errorf("virus peak temp %.1f °C, want near the 85 °C junction limit", pk)
	}
	hungry := MustParse(strings.Replace(hungryDoc, "4000", "20000", 1))
	hres, err := hungry.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("hungry run: %v", err)
	}
	if tf := find(hres, "throttled_fraction"); tf > 0.5 {
		t.Errorf("workload throttled fraction %.3f, want well under the virus", tf)
	}
	if ratio := find(hres, "dvfs_energy_ratio"); !(ratio > 0 && ratio < 1) {
		t.Errorf("dvfs energy ratio %.3f, want in (0, 1): voltage scaling must beat gating", ratio)
	}
}

// TestRunAssertions pins the assertion plumbing: a passing check and a
// failing one both land on the claim, and only the failing one surfaces in
// FailedChecks.
func TestRunAssertions(t *testing.T) {
	tr := MustParse(`{
		"name": "asserted", "dt_seconds": 0.01,
		"generator": {"kind": "virus", "intervals": 5000},
		"assert": [
			{"check": "peak_temp_c", "value": 85, "rel_tol": 0.1},
			{"check": "throughput", "value": 0.001, "rel_tol": 0.01}
		]
	}`)
	res, err := tr.Run(context.Background(), nil)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	failed := FailedChecks(res)
	if len(failed) != 1 || failed[0].Key != "throughput" {
		t.Fatalf("failed checks %v, want exactly the absurd throughput assertion", failed)
	}
}

// TestRunCancel pins the cancellation contract: a canceled run stops within
// one control interval — observed as a prompt error, no result, and a
// progress stream cut short of the total.
func TestRunCancel(t *testing.T) {
	tr := MustParse(`{"name":"long","dt_seconds":0.01,"generator":{"kind":"workload","intervals":40000000}}`)
	ctx, cancel := context.WithCancel(context.Background())
	seen := 0
	var last Progress
	res, err := tr.Run(ctx, func(p Progress) {
		seen++
		last = p
		if seen == 2 {
			cancel()
		}
	})
	if res != nil || err == nil {
		t.Fatalf("canceled run returned res=%v err=%v", res, err)
	}
	if !strings.Contains(err.Error(), "context canceled") {
		t.Fatalf("error %v, want context cancellation", err)
	}
	if last.Done >= last.Total {
		t.Fatalf("run completed (%d/%d) despite cancellation", last.Done, last.Total)
	}
}

// TestProgressInvariants walks a run's chunk stream checking monotonicity
// and the final-chunk guarantee.
func TestProgressInvariants(t *testing.T) {
	tr := MustParse(`{"name":"s","dt_seconds":0.5,"power_w":[10,20,30,40,50,60,70]}`)
	var got []Progress
	res, err := tr.Run(context.Background(), func(p Progress) { got = append(got, p) })
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(got) == 0 {
		t.Fatal("no chunks")
	}
	prev := 0
	for _, p := range got {
		if p.Done <= prev || p.Total != 7 {
			t.Fatalf("chunk %+v not monotone over total 7", p)
		}
		if math.Abs(p.TimeS-float64(p.Done)*0.5) > 1e-12 {
			t.Fatalf("chunk time %g, want %g", p.TimeS, float64(p.Done)*0.5)
		}
		prev = p.Done
	}
	if got[len(got)-1].Done != 7 {
		t.Fatalf("final chunk at %d/7", got[len(got)-1].Done)
	}
	if err := res.Validate(); err != nil {
		t.Fatalf("result invalid: %v", err)
	}
}
