// Package trace defines the workload-trace format of the simulation job
// service: a strict-JSON document naming a power trace (an explicit series
// or a synthetic generator spec over thermal.WorkloadParams / PowerVirus),
// the thermal/DTM simulation parameters to run it under, and assertions
// checked over the resulting time series in the Claim/Check schema.
//
// Traces cross the same trust boundary scenarios do (files on disk, POST
// bodies), so Parse mirrors scenario.Parse: unknown fields rejected, sizes
// capped, every value range-checked, and a parsed trace round-trips through
// its canonical encoding byte-identically. Key digests the canonical bytes
// — it is the content key the job queue and result store share, so an
// identical resubmit is a store hit instead of a second simulation.
package trace

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"math"
	"os"
	"regexp"

	"nanometer/internal/itrs"
)

// MaxFileBytes bounds a trace document; anything larger is hostile.
const MaxFileBytes = 1 << 20

// MaxSeriesPoints bounds an explicit power_w series. Longer workloads must
// use a generator spec, which never materializes the series.
const MaxSeriesPoints = 1 << 16

// MaxIntervals bounds a generated trace. 2×10⁸ intervals simulate in
// seconds and need no memory, so the cap exists to bound one job's CPU,
// not its footprint.
const MaxIntervals = 200_000_000

// MaxAssertions bounds the trace-supplied checks.
const MaxAssertions = 16

// DefaultNodeNM is the roadmap node a trace simulates against when it does
// not name one: the 50 nm node of the paper's §2.1 thermal argument.
const DefaultNodeNM = 50

// nameRE admits the same DNS-label-ish names scenarios use: bounded,
// metrics-safe, filename-safe.
var nameRE = regexp.MustCompile(`^[a-z0-9][a-z0-9._-]{0,47}$`)

// Trace is one workload-trace document. Exactly one of PowerW and Generator
// supplies the series; Sim and Assert are optional.
type Trace struct {
	// Name identifies the trace in job listings, store keys, and output;
	// lowercase [a-z0-9._-], ≤ 48 chars.
	Name string `json:"name"`
	// Title is an optional human headline.
	Title string `json:"title,omitempty"`
	// Notes records provenance (papers, assumptions).
	Notes []string `json:"notes,omitempty"`
	// DtSeconds is the control interval the series is sampled at.
	DtSeconds float64 `json:"dt_seconds"`
	// NodeNM selects the roadmap node supplying the package (θja, ambient,
	// junction limit) and the DVFS table; 0 means DefaultNodeNM. Must be a
	// base-table node.
	NodeNM int `json:"node_nm,omitempty"`
	// PowerW is an explicit power series: Watts per interval at full
	// frequency and nominal supply.
	PowerW []float64 `json:"power_w,omitempty"`
	// Generator synthesizes the series instead of listing it.
	Generator *Generator `json:"generator,omitempty"`
	// Sim overrides the simulation parameters (controller, sensor, mass).
	Sim *SimSpec `json:"sim,omitempty"`
	// Assert lists checks evaluated against the simulation's summary
	// metrics; a failed check fails the trace the way a failed paper check
	// fails an artifact.
	Assert []Assertion `json:"assert,omitempty"`
}

// Generator is a synthetic-series spec. Kind "workload" drives
// thermal.WorkloadParams (nil fields keep the thermal.DefaultWorkload
// values for the node's max power); kind "virus" is the flat
// theoretical-worst-case trace and admits no workload shaping.
type Generator struct {
	Kind string `json:"kind"`
	// Intervals is the series length.
	Intervals int `json:"intervals"`
	// TheoreticalMaxW overrides the power-virus level; nil means the
	// node's roadmap MaxPowerW.
	TheoreticalMaxW *float64 `json:"theoretical_max_w,omitempty"`

	TypicalFraction *float64 `json:"typical_fraction,omitempty"`
	BurstFraction   *float64 `json:"burst_fraction,omitempty"`
	BurstLevel      *float64 `json:"burst_level,omitempty"`
	NoiseFraction   *float64 `json:"noise_fraction,omitempty"`
	Seed            *int64   `json:"seed,omitempty"`
}

// SimSpec parameterizes the thermal/DTM simulation. All fields are
// optional; nil keeps the defaults (clock throttling at 50 % duty, the
// node's junction limit − 1 °C trip, 2 °C hysteresis, 40 J/°C thermal
// mass — the operating point of the c1 claim artifact).
type SimSpec struct {
	// Controller is one of "throttle", "dvs", "none" ("" = "throttle").
	Controller string `json:"controller,omitempty"`
	// DutyCycle is the throttled clock fraction (controller "throttle").
	DutyCycle *float64 `json:"duty_cycle,omitempty"`
	// FreqScale and VddScale are the derated point (controller "dvs").
	FreqScale *float64 `json:"freq_scale,omitempty"`
	VddScale  *float64 `json:"vdd_scale,omitempty"`
	// CthJPerC is the junction+package thermal mass.
	CthJPerC *float64 `json:"cth_j_per_c,omitempty"`
	// SensorTripC and HysteresisC shape the thermal sensor.
	SensorTripC *float64 `json:"sensor_trip_c,omitempty"`
	HysteresisC *float64 `json:"hysteresis_c,omitempty"`
}

// Assertion is one check over the simulation summary: the metric named by
// Check must land within RelTol of Value. A RelTol with Value 0 demands an
// exact 0 (the |v−0| ≤ tol·0 degenerate case), which is what asserting "no
// backlog" wants.
type Assertion struct {
	// Check is one of CheckNames.
	Check string `json:"check"`
	// Value is the expected value in the metric's unit; RelTol the allowed
	// relative deviation.
	Value  float64 `json:"value"`
	RelTol float64 `json:"rel_tol"`
}

// CheckNames lists the metrics assertions may target, sorted. They are the
// finding keys of the result claim, so an assertion simply attaches a
// Check to the matching finding.
func CheckNames() []string {
	return []string{
		"backlog_intervals",
		"dvfs_energy_ratio",
		"mean_power_w",
		"peak_power_w",
		"peak_temp_c",
		"throttled_fraction",
		"throughput",
	}
}

func validCheck(name string) bool {
	for _, c := range CheckNames() {
		if c == name {
			return true
		}
	}
	return false
}

// Parse decodes and validates one trace document. It is strict: unknown
// fields, oversized documents, out-of-range values are all errors. Hostile
// input must error, never panic (FuzzTraceParse).
func Parse(data []byte) (*Trace, error) {
	if len(data) > MaxFileBytes {
		return nil, fmt.Errorf("trace: document is %d bytes, limit %d", len(data), MaxFileBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var t Trace
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("trace: trailing data after document")
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return &t, nil
}

// Load reads and parses a trace file.
func Load(path string) (*Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("trace: %w", err)
	}
	t, err := Parse(data)
	if err != nil {
		return nil, fmt.Errorf("trace: %s: %w", path, err)
	}
	return t, nil
}

// MustParse is Parse for known-good literals (tests, guards).
func MustParse(data string) *Trace {
	t, err := Parse([]byte(data))
	if err != nil {
		panic(err)
	}
	return t
}

// Validate checks structure and ranges.
func (t *Trace) Validate() error {
	if !nameRE.MatchString(t.Name) {
		return fmt.Errorf("trace: name %q must match %s", t.Name, nameRE)
	}
	if !(t.DtSeconds > 0) || t.DtSeconds > 10 || math.IsInf(t.DtSeconds, 0) {
		return fmt.Errorf("trace %s: dt_seconds %g outside (0, 10]", t.Name, t.DtSeconds)
	}
	if t.NodeNM != 0 {
		if _, err := itrs.Base().ByNode(t.NodeNM); err != nil {
			return fmt.Errorf("trace %s: node_nm %d is not a base roadmap node", t.Name, t.NodeNM)
		}
	}
	switch {
	case len(t.PowerW) == 0 && t.Generator == nil:
		return fmt.Errorf("trace %s: need power_w or generator", t.Name)
	case len(t.PowerW) > 0 && t.Generator != nil:
		return fmt.Errorf("trace %s: power_w and generator are mutually exclusive", t.Name)
	}
	if len(t.PowerW) > MaxSeriesPoints {
		return fmt.Errorf("trace %s: %d power_w points, limit %d", t.Name, len(t.PowerW), MaxSeriesPoints)
	}
	for i, p := range t.PowerW {
		if math.IsNaN(p) || p < 0 || p > 10e3 {
			return fmt.Errorf("trace %s: power_w[%d] = %g outside [0, 10000]", t.Name, i, p)
		}
	}
	if t.Generator != nil {
		if err := t.Generator.validate(); err != nil {
			return fmt.Errorf("trace %s: %w", t.Name, err)
		}
	}
	if t.Sim != nil {
		if err := t.Sim.validate(); err != nil {
			return fmt.Errorf("trace %s: %w", t.Name, err)
		}
	}
	if len(t.Assert) > MaxAssertions {
		return fmt.Errorf("trace %s: %d assertions, limit %d", t.Name, len(t.Assert), MaxAssertions)
	}
	for _, a := range t.Assert {
		if !validCheck(a.Check) {
			return fmt.Errorf("trace %s: assertion check %q not one of %v", t.Name, a.Check, CheckNames())
		}
		if !(a.RelTol > 0) || a.RelTol > 10 || math.IsInf(a.RelTol, 0) {
			return fmt.Errorf("trace %s: assertion %s rel_tol %g outside (0, 10]", t.Name, a.Check, a.RelTol)
		}
		if math.IsNaN(a.Value) || math.IsInf(a.Value, 0) {
			return fmt.Errorf("trace %s: assertion %s value must be finite", t.Name, a.Check)
		}
	}
	return nil
}

func (g *Generator) validate() error {
	switch g.Kind {
	case "workload", "virus":
	default:
		return fmt.Errorf("generator kind %q not one of [workload virus]", g.Kind)
	}
	if g.Intervals < 1 || g.Intervals > MaxIntervals {
		return fmt.Errorf("generator intervals %d outside [1, %d]", g.Intervals, MaxIntervals)
	}
	if g.Kind == "virus" {
		if g.TypicalFraction != nil || g.BurstFraction != nil || g.BurstLevel != nil ||
			g.NoiseFraction != nil || g.Seed != nil {
			return fmt.Errorf("generator kind virus admits only intervals and theoretical_max_w")
		}
	}
	type rng struct {
		field string
		v     *float64
		lo    float64
		hi    float64
	}
	checks := []rng{
		{"theoretical_max_w", g.TheoreticalMaxW, 0.001, 10e3},
		{"typical_fraction", g.TypicalFraction, 0, 1},
		{"burst_fraction", g.BurstFraction, 0, 1},
		{"burst_level", g.BurstLevel, 0, 1},
		{"noise_fraction", g.NoiseFraction, 0, 0.5},
	}
	for _, c := range checks {
		if c.v == nil {
			continue
		}
		if v := *c.v; math.IsNaN(v) || v < c.lo || v > c.hi {
			return fmt.Errorf("generator %s = %g outside [%g, %g]", c.field, v, c.lo, c.hi)
		}
	}
	return nil
}

func (s *SimSpec) validate() error {
	switch s.Controller {
	case "", "throttle", "dvs", "none":
	default:
		return fmt.Errorf("sim controller %q not one of [throttle dvs none]", s.Controller)
	}
	if s.DutyCycle != nil && s.Controller != "" && s.Controller != "throttle" {
		return fmt.Errorf("sim duty_cycle only applies to controller throttle")
	}
	if (s.FreqScale != nil || s.VddScale != nil) && s.Controller != "dvs" {
		return fmt.Errorf("sim freq_scale/vdd_scale only apply to controller dvs")
	}
	type rng struct {
		field string
		v     *float64
		lo    float64
		hi    float64
	}
	checks := []rng{
		{"duty_cycle", s.DutyCycle, 0.01, 1},
		{"freq_scale", s.FreqScale, 0.01, 1},
		{"vdd_scale", s.VddScale, 0.01, 1},
		{"cth_j_per_c", s.CthJPerC, 0.01, 1e5},
		{"sensor_trip_c", s.SensorTripC, 25, 250},
		{"hysteresis_c", s.HysteresisC, 0, 50},
	}
	for _, c := range checks {
		if c.v == nil {
			continue
		}
		if v := *c.v; math.IsNaN(v) || v < c.lo || v > c.hi {
			return fmt.Errorf("sim %s = %g outside [%g, %g]", c.field, v, c.lo, c.hi)
		}
	}
	return nil
}

// Canonical returns the trace's canonical encoding: the compact JSON of the
// validated struct. Parse(Canonical(t)) reproduces the same canonical
// bytes (FuzzTraceParse pins the round trip).
func (t *Trace) Canonical() []byte {
	b, err := json.Marshal(t)
	if err != nil {
		// Trace has no unmarshalable fields; unreachable on a validated
		// value.
		panic(err)
	}
	return b
}

// Key returns a short stable digest of the trace's full content — series or
// generator spec, sim parameters, assertions. It is the compute key the job
// queue, result store, and ETags share: equal keys mean an identical
// simulation, so a resubmit is answerable from the store.
func (t *Trace) Key() string {
	h := fnv.New64a()
	h.Write(t.Canonical())
	return fmt.Sprintf("%016x", h.Sum64())
}

// ArtifactID is the store/report identity of the trace's result ("trace:" +
// name). Distinct documents sharing a name still get distinct store files —
// the store keys on (ArtifactID, Key) and Key covers the full content.
func (t *Trace) ArtifactID() string {
	return "trace:" + t.Name
}
