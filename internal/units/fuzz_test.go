package units

import (
	"math"
	"strings"
	"testing"
)

// fuzzUnits is the unit vocabulary the round-trip fuzzer cycles through:
// plain units, the empty unit, percent, and units that begin with a
// prefix letter (the ambiguity ParseEngineering's explicit-unit API
// resolves).
var fuzzUnits = []string{"s", "V", "W", "A/m", "", "%", "m", "mol", "µm"}

// FuzzEngineeringRoundTrip checks format → parse lands within the
// precision the formatted string actually carries: Engineering rounds to
// dec decimals at prefix scale, so the parsed value may differ from the
// input by at most half a unit in the last printed place (plus float
// slack), and NaN/±Inf round-trip exactly.
func FuzzEngineeringRoundTrip(f *testing.F) {
	f.Add(3.2e-9, uint8(3), uint8(0))
	f.Add(0.0, uint8(2), uint8(1))
	f.Add(-4.7e6, uint8(4), uint8(2))
	f.Add(1e300, uint8(3), uint8(3))
	f.Add(-1e-300, uint8(2), uint8(4))
	f.Add(math.Inf(1), uint8(3), uint8(0))
	f.Add(math.NaN(), uint8(3), uint8(0))
	f.Fuzz(func(t *testing.T, v float64, digits, unitSel uint8) {
		d := int(digits%10) + 1 // Engineering is specified for small digit counts
		unit := fuzzUnits[int(unitSel)%len(fuzzUnits)]

		formatted := Engineering(v, unit, d)
		parsed, err := ParseEngineering(formatted, unit)
		if err != nil {
			t.Fatalf("ParseEngineering(%q, %q) after Engineering(%g): %v", formatted, unit, v, err)
		}
		if math.IsNaN(v) {
			if !math.IsNaN(parsed) {
				t.Fatalf("NaN round-tripped to %g via %q", parsed, formatted)
			}
			return
		}
		if math.IsInf(v, 0) {
			if parsed != v {
				t.Fatalf("%g round-tripped to %g via %q", v, parsed, formatted)
			}
			return
		}
		tol := roundTripTolerance(t, formatted, unit, v)
		if diff := math.Abs(parsed - v); diff > tol {
			t.Fatalf("Engineering(%g, %q, %d) = %q parsed back to %g: off by %g (tolerance %g)",
				v, unit, d, formatted, parsed, diff, tol)
		}
	})
}

// roundTripTolerance recovers the precision of the formatted string: half
// a unit in the last printed decimal at the prefix scale, plus relative
// slack for float parse/multiply rounding at extreme magnitudes.
func roundTripTolerance(t *testing.T, formatted, unit string, v float64) float64 {
	t.Helper()
	body := strings.TrimSuffix(formatted, unit)
	scale := 1.0
	runes := []rune(strings.TrimSuffix(body, " "))
	if len(runes) > 0 {
		if exp, ok := prefixExp(runes[len(runes)-1]); ok {
			scale = pow10(exp)
			runes = runes[:len(runes)-1]
		}
	}
	num := strings.TrimSuffix(string(runes), " ")
	dec := 0
	if i := strings.IndexByte(num, '.'); i >= 0 {
		dec = len(num) - i - 1
	}
	return 0.51*pow10(-dec)*scale + 1e-12*math.Abs(v)
}

// FuzzParseEngineering throws arbitrary strings at the parser: it must
// never panic, and whenever it accepts, re-formatting the value with
// generous precision and re-parsing must agree exactly (the parser is a
// function, not a guesser).
func FuzzParseEngineering(f *testing.F) {
	f.Add("3.20 ns", uint8(0))
	f.Add("-0.00 fs", uint8(0))
	f.Add("1000 TV", uint8(1))
	f.Add("NaN s", uint8(0))
	f.Add("+Inf %", uint8(5))
	f.Add("garbage", uint8(2))
	f.Add("1.0e3 kW", uint8(2))
	f.Add("", uint8(0))
	f.Fuzz(func(t *testing.T, s string, unitSel uint8) {
		unit := fuzzUnits[int(unitSel)%len(fuzzUnits)]
		v, err := ParseEngineering(s, unit)
		if err != nil {
			return
		}
		if math.IsNaN(v) {
			return
		}
		again, err := ParseEngineering(Engineering(v, unit, 17), unit)
		if err != nil {
			t.Fatalf("accepted %q (= %g) but rejected its re-formatting: %v", s, v, err)
		}
		// 17 significant digits pin a float64 exactly except for the
		// prefix rescale, which can cost one ulp each way.
		if again != v && !ApproxEqual(again, v, 1e-14, 0) {
			t.Fatalf("parse(%q) = %v but re-parse of its formatting = %v", s, v, again)
		}
	})
}

// TestParseEngineeringKnown pins exact inverse pairs and the error paths
// the fuzzers only probabilistically reach.
func TestParseEngineeringKnown(t *testing.T) {
	for _, tc := range []struct {
		s, unit string
		want    float64
	}{
		{"3.20 ns", "s", 3.2e-9},
		{"5.00 m", "m", 5},
		{"2.00 mol", "mol", 2},
		{"120 mV", "V", 0.12},
		{"0.25 µm", "m", 0.25e-6},
		{"42.0 %", "%", 42},
		{"7.5 k", "", 7500},
		{"1.00 TW", "W", 1e12},
		{"-3.1 fA/m", "A/m", -3.1e-15},
	} {
		got, err := ParseEngineering(tc.s, tc.unit)
		if err != nil {
			t.Errorf("ParseEngineering(%q, %q): %v", tc.s, tc.unit, err)
			continue
		}
		if !ApproxEqual(got, tc.want, 1e-12, 0) {
			t.Errorf("ParseEngineering(%q, %q) = %g, want %g", tc.s, tc.unit, got, tc.want)
		}
	}
	for _, tc := range []struct{ s, unit string }{
		{"", "s"},
		{"s", "s"},
		{" s", "s"},
		{"3.2ns", "s"},   // missing space
		{"3.2 nV", "s"},  // wrong unit
		{"x.y ns", "s"},  // not a number
		{"1 2 ns", "s"},  // embedded space
		{"3.20 ks", "V"}, // unit mismatch
	} {
		if v, err := ParseEngineering(tc.s, tc.unit); err == nil {
			t.Errorf("ParseEngineering(%q, %q) = %g, want error", tc.s, tc.unit, v)
		}
	}
}
