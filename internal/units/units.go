// Package units provides physical constants and unit-handling helpers used
// throughout the nanometer-design model stack.
//
// All model code in this repository works in SI base units (meters, volts,
// amperes, watts, seconds, kelvin, farads, ohms) unless a function name or
// parameter explicitly says otherwise. Device-level quantities that the
// literature quotes per unit width (µA/µm, nA/µm) are carried in A/m
// internally; this package supplies conversions to and from the familiar
// engineering forms so that boundary code (tables, reports, tests written
// against paper values) stays readable.
package units

import (
	"fmt"
	"math"
)

// Fundamental constants (CODATA values, truncated to model-relevant
// precision — these models carry at best a few percent accuracy).
const (
	// BoltzmannJPerK is the Boltzmann constant in joules per kelvin.
	BoltzmannJPerK = 1.380649e-23
	// ElectronCharge is the elementary charge in coulombs.
	ElectronCharge = 1.602176634e-19
	// VacuumPermittivity is ε0 in farads per meter.
	VacuumPermittivity = 8.8541878128e-12
	// SiO2RelativePermittivity is the relative dielectric constant of
	// thermally grown silicon dioxide.
	SiO2RelativePermittivity = 3.9
	// SiRelativePermittivity is the relative dielectric constant of bulk
	// silicon.
	SiRelativePermittivity = 11.7
	// CopperResistivity is the bulk resistivity of copper interconnect in
	// ohm-meters (slightly above ideal bulk to reflect barrier/liner loss,
	// per BACPAC-era assumptions).
	CopperResistivity = 2.2e-8
	// AluminumResistivity is the bulk resistivity of aluminum interconnect
	// in ohm-meters.
	AluminumResistivity = 3.3e-8
)

// Convenient scale factors. Multiply to convert from the named unit to SI;
// divide to convert back.
const (
	Nano     = 1e-9
	Micro    = 1e-6
	Milli    = 1e-3
	Kilo     = 1e3
	Mega     = 1e6
	Giga     = 1e9
	Angstrom = 1e-10

	// CelsiusOffset converts between °C and K.
	CelsiusOffset = 273.15
)

// RoomTemperature is the reference ambient used for "room temperature"
// leakage quotes (300 K ≈ 27 °C), matching the ITRS convention the paper
// adopts for its 85 mV/decade subthreshold swing.
const RoomTemperature = 300.0

// ThermalVoltage returns kT/q in volts at temperature T (kelvin).
func ThermalVoltage(tKelvin float64) float64 {
	return BoltzmannJPerK * tKelvin / ElectronCharge
}

// CelsiusToKelvin converts a temperature in °C to kelvin.
func CelsiusToKelvin(c float64) float64 { return c + CelsiusOffset }

// KelvinToCelsius converts a temperature in kelvin to °C.
func KelvinToCelsius(k float64) float64 { return k - CelsiusOffset }

// OxideCapacitance returns the parallel-plate gate capacitance per unit area
// (F/m²) for an SiO2 dielectric of the given thickness in meters.
func OxideCapacitance(thicknessM float64) float64 {
	if thicknessM <= 0 {
		panic(fmt.Sprintf("units: non-positive oxide thickness %g", thicknessM))
	}
	return SiO2RelativePermittivity * VacuumPermittivity / thicknessM
}

// Current-per-width conversions. The device literature quotes drive and
// leakage currents per micron of gate width.

// AmpsPerMeterFromUAPerUM converts µA/µm to A/m. (1 µA/µm = 1 A/m... not
// quite: 1 µA/µm = 1e-6 A / 1e-6 m = 1 A/m.)
func AmpsPerMeterFromUAPerUM(uaPerUM float64) float64 { return uaPerUM }

// UAPerUMFromAmpsPerMeter converts A/m to µA/µm.
func UAPerUMFromAmpsPerMeter(aPerM float64) float64 { return aPerM }

// AmpsPerMeterFromNAPerUM converts nA/µm to A/m.
func AmpsPerMeterFromNAPerUM(naPerUM float64) float64 { return naPerUM * 1e-3 }

// NAPerUMFromAmpsPerMeter converts A/m to nA/µm.
func NAPerUMFromAmpsPerMeter(aPerM float64) float64 { return aPerM * 1e3 }

// OhmMetersFromOhmMicrons converts the customary Ω·µm parasitic-resistance
// quote (resistance × width) to Ω·m.
func OhmMetersFromOhmMicrons(ohmUM float64) float64 { return ohmUM * Micro }

// Engineering formatting -----------------------------------------------------

var siPrefixes = []struct {
	exp    int
	symbol string
}{
	{-15, "f"}, {-12, "p"}, {-9, "n"}, {-6, "µ"}, {-3, "m"},
	{0, ""}, {3, "k"}, {6, "M"}, {9, "G"}, {12, "T"},
}

// Engineering formats v with an SI prefix and the given unit, using digits
// significant digits, e.g. Engineering(3.2e-9, "s", 3) == "3.20 ns".
func Engineering(v float64, unit string, digits int) string {
	if v == 0 {
		return fmt.Sprintf("%.*f %s", maxInt(digits-1, 0), 0.0, unit)
	}
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Sprintf("%g %s", v, unit)
	}
	mag := math.Abs(v)
	exp := int(math.Floor(math.Log10(mag)/3.0)) * 3
	if exp < siPrefixes[0].exp {
		exp = siPrefixes[0].exp
	}
	last := siPrefixes[len(siPrefixes)-1].exp
	if exp > last {
		exp = last
	}
	symbol := ""
	for _, p := range siPrefixes {
		if p.exp == exp {
			symbol = p.symbol
			break
		}
	}
	scaled := v / math.Pow(10, float64(exp))
	// Choose decimals so total significant digits ≈ digits.
	intDigits := 1
	if a := math.Abs(scaled); a >= 10 {
		intDigits = int(math.Floor(math.Log10(a))) + 1
	}
	dec := maxInt(digits-intDigits, 0)
	return fmt.Sprintf("%.*f %s%s", dec, scaled, symbol, unit)
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Percent formats a fraction (0.42 → "42.0%").
func Percent(frac float64) string { return fmt.Sprintf("%.1f%%", frac*100) }

// ApproxEqual reports whether a and b agree within relative tolerance rel
// (falling back to absolute tolerance abs near zero).
func ApproxEqual(a, b, rel, abs float64) bool {
	diff := math.Abs(a - b)
	if diff <= abs {
		return true
	}
	scale := math.Max(math.Abs(a), math.Abs(b))
	return diff <= rel*scale
}
