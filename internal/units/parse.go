package units

import (
	"fmt"
	"strconv"
	"strings"
	"unicode/utf8"
)

// ParseEngineering parses a string produced by Engineering back into SI
// base units: ParseEngineering("3.20 ns", "s") == 3.2e-9. The caller
// states the unit, which removes the inherent ambiguity between a prefix
// and a unit that starts with a prefix letter ("5.00 m" as meters vs
// milli-something: with unit "m" it is 5 meters). The number may carry any
// prefix from the same table Engineering formats with, or none, and the
// NaN/±Inf spellings Engineering emits round-trip too.
//
// This is the trust-boundary inverse of the formatter: query parameters
// and config values quoted in engineering form ("0.25 µm", "120 mV")
// funnel through here instead of ad-hoc string surgery at each call site.
func ParseEngineering(s, unit string) (float64, error) {
	body, ok := strings.CutSuffix(s, unit)
	if !ok {
		return 0, fmt.Errorf("units: %q does not end in unit %q", s, unit)
	}
	scale := 1.0
	if r, size := utf8.DecodeLastRuneInString(body); size > 0 {
		if exp, ok := prefixExp(r); ok {
			scale = pow10(exp)
			body = body[:len(body)-size]
		}
	}
	num, ok := strings.CutSuffix(body, " ")
	if !ok || num == "" {
		return 0, fmt.Errorf("units: %q is not of the form \"<number> <prefix><unit>\"", s)
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("units: parsing %q: %w", s, err)
	}
	return v * scale, nil
}

// prefixExp maps an SI prefix rune to its power-of-ten exponent, using the
// same table Engineering formats from.
func prefixExp(r rune) (int, bool) {
	for _, p := range siPrefixes {
		if p.symbol != "" && []rune(p.symbol)[0] == r {
			return p.exp, true
		}
	}
	return 0, false
}

// pow10 returns 10^exp for the prefix exponents (multiples of 3 in
// [-15, 12]) without math.Pow's rounding surprises at negative exponents:
// dividing by the exact positive power keeps 1/1000 bit-identical to the
// scale constants the rest of the module multiplies with.
func pow10(exp int) float64 {
	neg := exp < 0
	if neg {
		exp = -exp
	}
	p := 1.0
	for i := 0; i < exp; i++ {
		p *= 10
	}
	if neg {
		return 1 / p
	}
	return p
}
