package units

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestThermalVoltage(t *testing.T) {
	got := ThermalVoltage(300)
	if !ApproxEqual(got, 0.02585, 1e-3, 0) {
		t.Fatalf("kT/q at 300 K = %g, want ≈25.85 mV", got)
	}
	if ThermalVoltage(600) <= got {
		t.Fatalf("thermal voltage must increase with temperature")
	}
}

func TestTemperatureConversions(t *testing.T) {
	if got := CelsiusToKelvin(85); got != 358.15 {
		t.Fatalf("85 °C = %g K, want 358.15", got)
	}
	if got := KelvinToCelsius(300); !ApproxEqual(got, 26.85, 1e-9, 0) {
		t.Fatalf("300 K = %g °C, want 26.85", got)
	}
	// Round trip property.
	f := func(c float64) bool {
		if math.IsNaN(c) || math.IsInf(c, 0) {
			return true
		}
		return ApproxEqual(KelvinToCelsius(CelsiusToKelvin(c)), c, 1e-12, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestOxideCapacitance(t *testing.T) {
	// 2 nm SiO2 ≈ 1.73 µF/cm² = 1.73e-2 F/m².
	got := OxideCapacitance(2e-9)
	if !ApproxEqual(got, 1.726e-2, 5e-3, 0) {
		t.Fatalf("Cox(2 nm) = %g F/m², want ≈1.73e-2", got)
	}
	// Thinner oxide, larger capacitance.
	if OxideCapacitance(1e-9) <= got {
		t.Fatalf("capacitance must increase as the oxide thins")
	}
}

func TestOxideCapacitancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatalf("expected panic for non-positive thickness")
		}
	}()
	OxideCapacitance(0)
}

func TestCurrentConversions(t *testing.T) {
	// 1 µA/µm is numerically 1 A/m.
	if got := AmpsPerMeterFromUAPerUM(750); got != 750 {
		t.Fatalf("750 µA/µm = %g A/m, want 750", got)
	}
	if got := AmpsPerMeterFromNAPerUM(456); !ApproxEqual(got, 0.456, 1e-12, 0) {
		t.Fatalf("456 nA/µm = %g A/m, want 0.456", got)
	}
	if got := NAPerUMFromAmpsPerMeter(0.456); !ApproxEqual(got, 456, 1e-12, 0) {
		t.Fatalf("0.456 A/m = %g nA/µm, want 456", got)
	}
	if got := OhmMetersFromOhmMicrons(190); !ApproxEqual(got, 190e-6, 1e-12, 0) {
		t.Fatalf("190 Ω·µm = %g Ω·m", got)
	}
}

func TestEngineering(t *testing.T) {
	cases := []struct {
		v      float64
		unit   string
		digits int
		want   string
	}{
		{3.2e-9, "s", 3, "3.20 ns"},
		{0.0456, "A", 3, "45.6 mA"},
		{1234, "W", 3, "1.23 kW"},
		{2.5e-15, "F", 2, "2.5 fF"},
		{0, "V", 2, "0.0 V"},
		{1e15, "Hz", 3, "1000 THz"}, // clamps at tera
	}
	for _, c := range cases {
		if got := Engineering(c.v, c.unit, c.digits); got != c.want {
			t.Errorf("Engineering(%g, %q, %d) = %q, want %q", c.v, c.unit, c.digits, got, c.want)
		}
	}
	if got := Engineering(math.NaN(), "x", 3); !strings.Contains(got, "NaN") {
		t.Errorf("NaN formatting = %q", got)
	}
	if got := Engineering(-4.7e-6, "A", 3); got != "-4.70 µA" {
		t.Errorf("negative formatting = %q", got)
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.456); got != "45.6%" {
		t.Fatalf("Percent(0.456) = %q", got)
	}
}

func TestApproxEqual(t *testing.T) {
	if !ApproxEqual(100, 101, 0.02, 0) {
		t.Fatalf("1%% apart should match at 2%% tolerance")
	}
	if ApproxEqual(100, 103, 0.02, 0) {
		t.Fatalf("3%% apart should not match at 2%% tolerance")
	}
	if !ApproxEqual(0, 1e-12, 0, 1e-9) {
		t.Fatalf("absolute tolerance near zero should match")
	}
}

func TestRoomTemperature(t *testing.T) {
	if RoomTemperature != 300 {
		t.Fatalf("the paper's leakage convention is 300 K, got %g", RoomTemperature)
	}
}
