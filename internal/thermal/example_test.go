package thermal_test

import (
	"fmt"

	"nanometer/internal/thermal"
)

// Eq. 1 of the paper: a 0.8 °C/W package holding the junction at 85 °C over
// a 45 °C ambient can dissipate 50 W.
func ExamplePackage() {
	pkg := thermal.Package{ThetaJA: 0.8, AmbientC: 45}
	fmt.Printf("Tchip at 50 W: %.0f °C; max power at 85 °C: %.0f W\n",
		pkg.JunctionTempC(50), pkg.MaxPowerW(85))
	// Output:
	// Tchip at 50 W: 85 °C; max power at 85 °C: 50 W
}

// The cited cooling-cost step: 65 W rides forced air, 75 W needs heat
// pipes at roughly 3× the cost (§2.1).
func ExampleSelectCooling() {
	c65, _ := thermal.SelectCooling(65, 100, 45)
	c75, _ := thermal.SelectCooling(75, 100, 45)
	fmt.Printf("65 W: %v; 75 W: %v (cost ×%.1f)\n", c65.Class, c75.Class, c75.CostUSD/c65.CostUSD)
	// Output:
	// 65 W: forced air; 75 W: heat pipe (cost ×3.0)
}

// A Pentium-4-style thermal monitor: the sensor trips at the limit, the
// throttle halves the effective clock, and the junction holds.
func ExampleSimulate() {
	pkg := thermal.Package{ThetaJA: 0.31, AmbientC: 45} // sized for 75 % of worst case
	plant := thermal.NewPlant(pkg, 40)
	sensor := &thermal.Sensor{TripC: 84, HysteresisC: 2}
	virus := thermal.PowerVirus(174, 20000)
	res := thermal.Simulate(plant, sensor, thermal.ClockThrottle{DutyCycle: 0.5}, virus, 0.01)
	fmt.Printf("junction held: %v, throughput above half: %v\n",
		res.PeakTempC < 85.5, res.Throughput > 0.5)
	// Output:
	// junction held: true, throughput above half: true
}
