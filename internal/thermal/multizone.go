package thermal

import (
	"fmt"
	"math"
)

// MultiZonePlant extends the lumped plant to the paper's hot-spot picture
// (§4 footnote: half the die is memory at ~1/10 logic density, some logic
// at twice the average): n thermal zones, each with its own capacitance and
// power share, coupled laterally through the spreader and vertically to
// ambient through per-zone slices of θja. Sensor-placement analysis falls
// out: a sensor in the wrong zone underestimates the hot spot.
type MultiZonePlant struct {
	// ZoneTempC are the junction temperatures per zone.
	ZoneTempC []float64
	// CthJPerC are the per-zone thermal capacitances.
	CthJPerC []float64
	// ThetaZoneToAmb are per-zone vertical resistances (°C/W); the
	// parallel combination reproduces the package θja.
	ThetaZoneToAmb []float64
	// ThetaLateral couples adjacent zones (°C/W).
	ThetaLateral float64
	// AmbientC is the ambient temperature.
	AmbientC float64
}

// NewMultiZonePlant splits a package into n zones by area share. areaShare
// must sum to ≈1. Each zone's vertical resistance is θja scaled inversely
// to its area; lateral coupling defaults to 2×θja per zone pair — copper
// spreaders equalize centimeters of die to within a few degrees, which is
// what keeps real hot spots bounded.
func NewMultiZonePlant(pkg Package, cthTotal float64, areaShare []float64) (*MultiZonePlant, error) {
	n := len(areaShare)
	if n < 2 {
		return nil, fmt.Errorf("thermal: need ≥2 zones, got %d", n)
	}
	sum := 0.0
	for _, a := range areaShare {
		if a <= 0 {
			return nil, fmt.Errorf("thermal: non-positive area share %g", a)
		}
		sum += a
	}
	if math.Abs(sum-1) > 0.02 {
		return nil, fmt.Errorf("thermal: area shares sum to %g, want 1", sum)
	}
	p := &MultiZonePlant{
		ZoneTempC:      make([]float64, n),
		CthJPerC:       make([]float64, n),
		ThetaZoneToAmb: make([]float64, n),
		ThetaLateral:   2 * pkg.ThetaJA,
		AmbientC:       pkg.AmbientC,
	}
	for i, a := range areaShare {
		p.ZoneTempC[i] = pkg.AmbientC
		p.CthJPerC[i] = cthTotal * a
		p.ThetaZoneToAmb[i] = pkg.ThetaJA / a
	}
	return p, nil
}

// Step advances the plant by dt seconds with per-zone power powerW
// (explicit Euler with internal sub-stepping for stability).
func (p *MultiZonePlant) Step(powerW []float64, dt float64) error {
	n := len(p.ZoneTempC)
	if len(powerW) != n {
		return fmt.Errorf("thermal: %d zone powers for %d zones", len(powerW), n)
	}
	// Sub-step at a tenth of the fastest time constant.
	minTau := math.Inf(1)
	for i := 0; i < n; i++ {
		tau := p.CthJPerC[i] * 1 / (1/p.ThetaZoneToAmb[i] + 2/p.ThetaLateral)
		minTau = math.Min(minTau, tau)
	}
	steps := int(dt/(minTau/10)) + 1
	h := dt / float64(steps)
	for s := 0; s < steps; s++ {
		dT := make([]float64, n)
		for i := 0; i < n; i++ {
			q := powerW[i] - (p.ZoneTempC[i]-p.AmbientC)/p.ThetaZoneToAmb[i]
			if i > 0 {
				q -= (p.ZoneTempC[i] - p.ZoneTempC[i-1]) / p.ThetaLateral
			}
			if i < n-1 {
				q -= (p.ZoneTempC[i] - p.ZoneTempC[i+1]) / p.ThetaLateral
			}
			dT[i] = q * h / p.CthJPerC[i]
		}
		for i := 0; i < n; i++ {
			p.ZoneTempC[i] += dT[i]
		}
	}
	return nil
}

// MaxTempC returns the hottest zone.
func (p *MultiZonePlant) MaxTempC() float64 {
	max := math.Inf(-1)
	for _, t := range p.ZoneTempC {
		max = math.Max(max, t)
	}
	return max
}

// SensorError returns how far a sensor placed in the given zone reads below
// the true hot spot — the placement penalty a thermal-monitor designer must
// budget as a trip-point offset.
func (p *MultiZonePlant) SensorError(zone int) float64 {
	return p.MaxTempC() - p.ZoneTempC[zone]
}

// HotspotSplit returns the §4-footnote power split over 3 zones for a chip:
// half the area is memory at ~1/10 logic density, and a hot logic zone runs
// at twice the average logic density. Returns (areaShare, powerShare).
func HotspotSplit() (areaShare, powerShare []float64) {
	// Zones: memory (50 % area), normal logic (37.5 %), hot logic (12.5 %).
	areaShare = []float64{0.50, 0.375, 0.125}
	// Densities: memory 0.1×logic, hot 2×logic. Normalize power.
	d := []float64{0.1, 1, 2}
	total := 0.0
	for i := range areaShare {
		total += areaShare[i] * d[i]
	}
	powerShare = make([]float64, 3)
	for i := range areaShare {
		powerShare[i] = areaShare[i] * d[i] / total
	}
	return areaShare, powerShare
}
