package thermal

import (
	"fmt"
	"math"
)

// Controller is a dynamic-thermal-management policy: given the sensor state
// each control interval, it returns the frequency and voltage derating to
// apply for the next interval (1.0 = full speed / nominal supply).
type Controller interface {
	// Act returns (freqScale, vddScale) for the next interval.
	Act(overTemp bool) (freqScale, vddScale float64)
	// Name describes the policy.
	Name() string
}

// NoDTM runs flat out; the package must absorb the theoretical worst case.
type NoDTM struct{}

func (NoDTM) Act(bool) (float64, float64) { return 1, 1 }
func (NoDTM) Name() string                { return "no DTM" }

// ClockThrottle is the Pentium-4-style thermal monitor response: when the
// sensor trips, the internal clock runs at DutyCycle effective rate until
// the sensor releases.
type ClockThrottle struct {
	// DutyCycle is the effective clock fraction while throttled (Intel's
	// implementation gated the clock at ~50 %).
	DutyCycle float64
}

func (c ClockThrottle) Act(overTemp bool) (float64, float64) {
	if overTemp {
		return c.DutyCycle, 1
	}
	return 1, 1
}
func (c ClockThrottle) Name() string {
	return fmt.Sprintf("clock throttle (duty %.0f%%)", c.DutyCycle*100)
}

// DVS is the Transmeta-style response: when the sensor trips, both frequency
// and supply are stepped down, cutting power ≈cubically; they recover when
// the sensor releases.
type DVS struct {
	// FreqScale and VddScale are the throttled operating point.
	FreqScale, VddScale float64
}

func (d DVS) Act(overTemp bool) (float64, float64) {
	if overTemp {
		return d.FreqScale, d.VddScale
	}
	return 1, 1
}
func (d DVS) Name() string {
	return fmt.Sprintf("DVS (f×%.2f, Vdd×%.2f)", d.FreqScale, d.VddScale)
}

// SimResult summarizes a DTM simulation run.
type SimResult struct {
	// PeakTempC and PeakPowerW are the maxima observed.
	PeakTempC, PeakPowerW float64
	// MeanPowerW is the time-averaged dissipation.
	MeanPowerW float64
	// ThrottledFraction is the fraction of intervals spent derated.
	ThrottledFraction float64
	// Throughput is the delivered work relative to an unthrottled run
	// (frequency-proportional).
	Throughput float64
	// Steps is the number of control intervals simulated.
	Steps int
}

// Simulate runs a power trace (demandW per control interval of dt seconds)
// through the plant under the controller. demand is the power the workload
// would dissipate at full frequency and nominal Vdd; the controller's
// derating scales it by freqScale·vddScale² (dynamic-power model).
func Simulate(plant *Plant, sensor *Sensor, ctrl Controller, demandW []float64, dt float64) SimResult {
	var res SimResult
	res.Steps = len(demandW)
	var workDone, workIdeal float64
	var throttled int
	for _, d := range demandW {
		over := sensor.Read(plant.TempC)
		fs, vs := ctrl.Act(over)
		p := d * fs * vs * vs
		plant.Step(p, dt)
		if plant.TempC > res.PeakTempC {
			res.PeakTempC = plant.TempC
		}
		if p > res.PeakPowerW {
			res.PeakPowerW = p
		}
		res.MeanPowerW += p
		workDone += fs
		workIdeal++
		if fs < 1 || vs < 1 {
			throttled++
		}
	}
	if res.Steps > 0 {
		res.MeanPowerW /= float64(res.Steps)
		res.ThrottledFraction = float64(throttled) / float64(res.Steps)
	}
	if workIdeal > 0 {
		res.Throughput = workDone / workIdeal
	}
	return res
}

// EffectiveWorstCase returns the sustained power level a package designed
// with DTM must handle: the highest mean power any trace produces under the
// controller, with the junction held at tMaxC. It searches the supplied
// traces and returns the worst.
func EffectiveWorstCase(pkg Package, cth float64, sensorTrip float64, ctrl Controller, traces [][]float64, dt float64) float64 {
	worst := 0.0
	for _, tr := range traces {
		plant := NewPlant(pkg, cth)
		sensor := &Sensor{TripC: sensorTrip, HysteresisC: 2}
		r := Simulate(plant, sensor, ctrl, tr, dt)
		if r.MeanPowerW > worst {
			worst = r.MeanPowerW
		}
	}
	return worst
}

// ThetaJAHeadroom returns the relative θja relief from designing the package
// for pEffective instead of pTheoretical at the same junction limit:
// θja scales as 1/P, so the relief is pTheoretical/pEffective − 1 (the
// paper's 25 % power reduction → 33 % higher allowable θja).
func ThetaJAHeadroom(pTheoretical, pEffective float64) float64 {
	if pEffective <= 0 {
		return math.Inf(1)
	}
	return pTheoretical/pEffective - 1
}
