package thermal

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEquation1(t *testing.T) {
	// θja = (Tchip − Tambient)/Pchip and its rearrangements.
	pkg := Package{ThetaJA: 0.8, AmbientC: 45}
	if got := pkg.JunctionTempC(50); got != 85 {
		t.Fatalf("Tchip = %g, want 85", got)
	}
	if got := pkg.MaxPowerW(85); got != 50 {
		t.Fatalf("Pmax = %g, want 50", got)
	}
	theta, err := RequiredThetaJA(50, 85, 45)
	if err != nil || theta != 0.8 {
		t.Fatalf("θja = %g (%v), want 0.8", theta, err)
	}
}

func TestRequiredThetaJAErrors(t *testing.T) {
	if _, err := RequiredThetaJA(0, 85, 45); err == nil {
		t.Fatalf("zero power must error")
	}
	if _, err := RequiredThetaJA(50, 40, 45); err == nil {
		t.Fatalf("junction below ambient must error")
	}
}

func TestCoolingTiers(t *testing.T) {
	// The 1999 design point (junction 100 °C, ambient 45 °C).
	c65, err := SelectCooling(65, 100, 45)
	if err != nil {
		t.Fatal(err)
	}
	c75, err := SelectCooling(75, 100, 45)
	if err != nil {
		t.Fatal(err)
	}
	if c65.Class != ForcedAir {
		t.Fatalf("65 W should be forced air, got %v", c65.Class)
	}
	if c75.Class != HeatPipe {
		t.Fatalf("75 W should need heat pipes, got %v", c75.Class)
	}
	ratio := c75.CostUSD / c65.CostUSD
	if ratio < 2.4 || ratio > 3.6 {
		t.Fatalf("65→75 W cost step = %.1f×, paper says ~3×", ratio)
	}
}

func TestCoolingMonotoneCost(t *testing.T) {
	prev := 0.0
	for _, p := range []float64{10, 40, 65, 75, 120, 180, 300} {
		sol, err := SelectCooling(p, 85, 45)
		if err != nil {
			t.Fatalf("%g W: %v", p, err)
		}
		if sol.CostUSD < prev {
			t.Fatalf("cooling cost must not fall as power rises (%g W: $%g < $%g)", p, sol.CostUSD, prev)
		}
		prev = sol.CostUSD
	}
}

func TestCoolingRefrigerationDollarPerWatt(t *testing.T) {
	// Deep tiers approach the paper's ~$1/W refrigeration cost.
	sol, err := SelectCooling(500, 85, 45)
	if err != nil {
		t.Fatal(err)
	}
	if sol.Class != Refrigeration {
		t.Fatalf("500 W at 85 °C should need refrigeration, got %v", sol.Class)
	}
	perWatt := (sol.CostUSD - 150) / 500
	if math.Abs(perWatt-1.0) > 1e-9 {
		t.Fatalf("refrigeration = $%.2f/W, paper says ~$1/W", perWatt)
	}
}

func TestCoolingInfeasible(t *testing.T) {
	if _, err := SelectCooling(5000, 50, 45); err == nil {
		t.Fatalf("impossible θja must error")
	}
}

func TestPlantConvergesToSteadyState(t *testing.T) {
	pkg := Package{ThetaJA: 0.5, AmbientC: 45}
	plant := NewPlant(pkg, 40)
	for i := 0; i < 10000; i++ {
		plant.Step(100, 0.1)
	}
	want := pkg.JunctionTempC(100) // 95 °C
	if math.Abs(plant.TempC-want) > 0.01 {
		t.Fatalf("steady state %g, want %g", plant.TempC, want)
	}
}

func TestPlantExactExponential(t *testing.T) {
	pkg := Package{ThetaJA: 0.5, AmbientC: 45}
	plant := NewPlant(pkg, 40)
	tau := plant.TimeConstant()
	if tau != 20 {
		t.Fatalf("τ = %g, want 20 s", tau)
	}
	plant.Step(100, tau) // one time constant
	want := 95 + (45-95)*math.Exp(-1)
	if math.Abs(plant.TempC-want) > 1e-9 {
		t.Fatalf("after one τ: %g, want %g", plant.TempC, want)
	}
}

// Property: stepping in two halves equals one full step (the exponential
// update is exact, not Euler).
func TestPlantStepComposition(t *testing.T) {
	f := func(pSeed, dtSeed uint8) bool {
		p := float64(pSeed)
		dt := 0.01 + float64(dtSeed)/10
		pkg := Package{ThetaJA: 0.4, AmbientC: 45}
		a := NewPlant(pkg, 30)
		b := NewPlant(pkg, 30)
		a.Step(p, dt)
		b.Step(p, dt/2)
		b.Step(p, dt/2)
		return math.Abs(a.TempC-b.TempC) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSensorHysteresis(t *testing.T) {
	s := &Sensor{TripC: 85, HysteresisC: 3}
	if s.Read(80) {
		t.Fatalf("below trip must not assert")
	}
	if !s.Read(85) {
		t.Fatalf("at trip must assert")
	}
	if !s.Read(83) {
		t.Fatalf("within hysteresis must stay asserted")
	}
	if s.Read(81.9) {
		t.Fatalf("below trip−hysteresis must release")
	}
	// Offset shifts the trip point.
	s2 := &Sensor{TripC: 85, HysteresisC: 3, OffsetC: 5}
	if !s2.Read(80) {
		t.Fatalf("a sensor reading 5 °C high must trip early")
	}
	s2.Reset()
	if s2.tripped {
		t.Fatalf("reset must clear the latch")
	}
}

func TestControllers(t *testing.T) {
	if f, v := (NoDTM{}).Act(true); f != 1 || v != 1 {
		t.Fatalf("NoDTM must never derate")
	}
	th := ClockThrottle{DutyCycle: 0.5}
	if f, v := th.Act(true); f != 0.5 || v != 1 {
		t.Fatalf("throttle hot: %g, %g", f, v)
	}
	if f, _ := th.Act(false); f != 1 {
		t.Fatalf("throttle must release when cool")
	}
	dvs := DVS{FreqScale: 0.7, VddScale: 0.8}
	if f, v := dvs.Act(true); f != 0.7 || v != 0.8 {
		t.Fatalf("DVS hot: %g, %g", f, v)
	}
	for _, c := range []Controller{NoDTM{}, th, dvs} {
		if c.Name() == "" {
			t.Fatalf("controller must have a name")
		}
	}
}

func TestSimulateVirusContained(t *testing.T) {
	// A package sized for 75 % of the virus: without DTM the junction
	// overshoots; with throttling it holds.
	const pMax = 174.0
	theta, _ := RequiredThetaJA(0.75*pMax, 85, 45)
	pkg := Package{ThetaJA: theta, AmbientC: 45}
	virus := PowerVirus(pMax, 20000)

	noDTM := Simulate(NewPlant(pkg, 40), &Sensor{TripC: 84, HysteresisC: 2}, NoDTM{}, virus, 0.01)
	if noDTM.PeakTempC <= 85 {
		t.Fatalf("without DTM the virus must overheat the underdesigned package (peak %g)", noDTM.PeakTempC)
	}
	dtm := Simulate(NewPlant(pkg, 40), &Sensor{TripC: 84, HysteresisC: 2}, ClockThrottle{DutyCycle: 0.5}, virus, 0.01)
	if dtm.PeakTempC > 85.5 {
		t.Fatalf("throttling must hold the junction (peak %g)", dtm.PeakTempC)
	}
	if dtm.Throughput >= 1 || dtm.Throughput < 0.5 {
		t.Fatalf("throttled virus throughput = %g, expected graceful degradation", dtm.Throughput)
	}
	if dtm.ThrottledFraction <= 0 {
		t.Fatalf("the controller must actually have engaged")
	}
}

func TestSimulateDVSBeatsThrottleOnThroughput(t *testing.T) {
	// At equal thermal containment, cubic-power DVS derating delivers more
	// work per degree than linear clock gating.
	const pMax = 174.0
	theta, _ := RequiredThetaJA(0.75*pMax, 85, 45)
	pkg := Package{ThetaJA: theta, AmbientC: 45}
	virus := PowerVirus(pMax, 20000)
	th := Simulate(NewPlant(pkg, 40), &Sensor{TripC: 84, HysteresisC: 2}, ClockThrottle{DutyCycle: 0.5}, virus, 0.01)
	dv := Simulate(NewPlant(pkg, 40), &Sensor{TripC: 84, HysteresisC: 2}, DVS{FreqScale: 0.7, VddScale: 0.8}, virus, 0.01)
	if dv.Throughput <= th.Throughput {
		t.Fatalf("DVS throughput %g should beat clock throttling %g", dv.Throughput, th.Throughput)
	}
	if dv.PeakTempC > 85.5 {
		t.Fatalf("DVS must still contain the virus")
	}
}

func TestEffectiveWorstCase(t *testing.T) {
	pkg := Package{ThetaJA: 0.25, AmbientC: 45}
	var traces [][]float64
	for seed := int64(1); seed <= 3; seed++ {
		p := DefaultWorkload(174)
		p.Seed = seed
		traces = append(traces, p.Generate(3000))
	}
	eff := EffectiveWorstCase(pkg, 40, 84, ClockThrottle{DutyCycle: 0.5}, traces, 0.01)
	frac := eff / 174
	if frac < 0.6 || frac > 0.9 {
		t.Fatalf("effective worst case = %.0f%% of theoretical, paper says ≈75%%", frac*100)
	}
}

func TestThetaJAHeadroom(t *testing.T) {
	// 25 % lower power → 33 % higher allowable θja (the paper's numbers).
	if got := ThetaJAHeadroom(100, 75); math.Abs(got-1.0/3) > 1e-9 {
		t.Fatalf("headroom = %g, want 1/3", got)
	}
	if !math.IsInf(ThetaJAHeadroom(100, 0), 1) {
		t.Fatalf("zero effective power must give infinite headroom")
	}
}

func TestWorkloadGenerator(t *testing.T) {
	p := DefaultWorkload(100)
	trace := p.Generate(5000)
	if len(trace) != 5000 {
		t.Fatalf("trace length %d", len(trace))
	}
	sum := 0.0
	for _, v := range trace {
		if v < 0 || v > 100 {
			t.Fatalf("trace value %g outside [0, max]", v)
		}
		sum += v
	}
	mean := sum / float64(len(trace))
	if mean < 60 || mean > 90 {
		t.Fatalf("mean workload = %g, expected the power-hungry ~70-80%% band", mean)
	}
	// Deterministic by seed.
	again := p.Generate(5000)
	for i := range trace {
		if trace[i] != again[i] {
			t.Fatalf("generator must be deterministic for a fixed seed")
		}
	}
	p2 := p
	p2.Seed = 99
	other := p2.Generate(5000)
	same := true
	for i := range trace {
		if trace[i] != other[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatalf("different seeds must differ")
	}
}

// TestWorkloadBurstStatistics pins the generator to its contract on a
// 10⁶-interval trace: the measured burst duty cycle lands within ±10 %
// relative of BurstFraction, and burst lengths are geometric with mean
// BurstMeanLength. Burst and base levels are disjoint under the default
// noise amplitude (0.95·(1−0.08) = 0.874 vs 0.70·(1+0.08) = 0.756), so a
// midpoint threshold classifies every interval exactly.
func TestWorkloadBurstStatistics(t *testing.T) {
	const n = 1_000_000
	for _, burstFraction := range []float64{0.15, 0.30} {
		p := DefaultWorkload(100)
		p.BurstFraction = burstFraction
		trace := p.Generate(n)
		threshold := 100 * (p.BurstLevel*(1-p.NoiseFraction) + p.TypicalFraction*(1+p.NoiseFraction)) / 2
		inBurst := 0
		bursts := 0
		prev := false
		for _, v := range trace {
			b := v > threshold
			if b {
				inBurst++
				if !prev {
					bursts++
				}
			}
			prev = b
		}
		duty := float64(inBurst) / n
		if rel := math.Abs(duty-burstFraction) / burstFraction; rel > 0.10 {
			t.Errorf("BurstFraction=%g: measured duty %.4f off by %.1f%%, want within ±10%%",
				burstFraction, duty, rel*100)
		}
		meanLen := float64(inBurst) / float64(bursts)
		if meanLen < BurstMeanLength*0.92 || meanLen > BurstMeanLength*1.08 {
			t.Errorf("BurstFraction=%g: mean burst length %.2f, want ≈%g (geometric)",
				burstFraction, meanLen, BurstMeanLength)
		}
	}
	// Deterministic per seed at the statistical length too.
	p := DefaultWorkload(100)
	a, b := p.Generate(4096), p.Generate(4096)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("trace diverges at interval %d for a fixed seed", i)
		}
	}
}

func TestPowerVirus(t *testing.T) {
	v := PowerVirus(174, 10)
	for _, x := range v {
		if x != 174 {
			t.Fatalf("virus must be flat at the theoretical maximum")
		}
	}
}
