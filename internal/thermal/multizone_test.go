package thermal

import (
	"math"
	"testing"
)

func hotspotPlant(t *testing.T) (*MultiZonePlant, []float64, float64) {
	t.Helper()
	area, powerShare := HotspotSplit()
	pkg := Package{ThetaJA: 0.25, AmbientC: 45}
	p, err := NewMultiZonePlant(pkg, 40, area)
	if err != nil {
		t.Fatal(err)
	}
	const total = 174.0
	powers := make([]float64, len(powerShare))
	for i, s := range powerShare {
		powers[i] = s * total
	}
	return p, powers, total
}

func TestHotspotSplit(t *testing.T) {
	area, power := HotspotSplit()
	var aSum, pSum float64
	for i := range area {
		aSum += area[i]
		pSum += power[i]
	}
	if math.Abs(aSum-1) > 1e-12 || math.Abs(pSum-1) > 1e-12 {
		t.Fatalf("shares must sum to 1: %g, %g", aSum, pSum)
	}
	// The hot zone's density approaches the paper's footnote-7 factor of 4
	// over uniform (its exact arithmetic with 1/10-density memory on half
	// the die and 2×-density hot logic gives ≈3; the paper rounds up).
	hotDensity := power[2] / area[2]
	if hotDensity < 2.5 || hotDensity > 4.5 {
		t.Fatalf("hot-zone density = %.2f× uniform, paper says ≈4×", hotDensity)
	}
	// Memory density ~0.4× uniform (1/10 of logic).
	if d := power[0] / area[0]; d > 0.5 {
		t.Fatalf("memory density = %.2f× uniform, expected well below 1", d)
	}
}

func TestMultiZoneSteadyState(t *testing.T) {
	p, powers, total := hotspotPlant(t)
	for i := 0; i < 40000; i++ {
		if err := p.Step(powers, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	// The hot zone must exceed the uniform-model junction temperature, and
	// the memory zone sit below it.
	uniform := Package{ThetaJA: 0.25, AmbientC: 45}.JunctionTempC(total)
	if p.ZoneTempC[2] <= uniform {
		t.Fatalf("hot zone %.1f °C should exceed the uniform estimate %.1f °C", p.ZoneTempC[2], uniform)
	}
	if p.ZoneTempC[0] >= uniform {
		t.Fatalf("memory zone %.1f °C should undercut the uniform estimate %.1f °C", p.ZoneTempC[0], uniform)
	}
	if p.MaxTempC() != p.ZoneTempC[2] {
		t.Fatalf("the hot-logic zone must be the maximum")
	}
	// Lateral coupling keeps the spread finite: zones within ~40 °C.
	if spread := p.ZoneTempC[2] - p.ZoneTempC[0]; spread <= 0 || spread > 40 {
		t.Fatalf("zone spread %.1f °C implausible", spread)
	}
}

func TestSensorPlacementError(t *testing.T) {
	p, powers, _ := hotspotPlant(t)
	for i := 0; i < 40000; i++ {
		if err := p.Step(powers, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	// A sensor in the memory zone underestimates the hot spot badly; one
	// in the hot zone reads true.
	if p.SensorError(2) != 0 {
		t.Fatalf("hot-zone sensor must read the maximum")
	}
	if p.SensorError(0) < 3 {
		t.Fatalf("memory-zone sensor error %.1f °C — placement must matter", p.SensorError(0))
	}
	if p.SensorError(0) <= p.SensorError(1) {
		t.Fatalf("the further the sensor from the hot spot, the larger the error")
	}
}

func TestMultiZoneConservesAgainstLumped(t *testing.T) {
	// With uniform power density the multi-zone plant converges to the
	// lumped model's junction temperature in every zone.
	area := []float64{0.5, 0.3, 0.2}
	pkg := Package{ThetaJA: 0.3, AmbientC: 45}
	p, err := NewMultiZonePlant(pkg, 40, area)
	if err != nil {
		t.Fatal(err)
	}
	const total = 100.0
	powers := []float64{50, 30, 20} // proportional to area = uniform density
	for i := 0; i < 40000; i++ {
		if err := p.Step(powers, 0.01); err != nil {
			t.Fatal(err)
		}
	}
	want := pkg.JunctionTempC(total)
	for i, tz := range p.ZoneTempC {
		if math.Abs(tz-want) > 0.5 {
			t.Fatalf("uniform zone %d = %.2f °C, lumped model says %.2f °C", i, tz, want)
		}
	}
}

func TestMultiZoneErrors(t *testing.T) {
	pkg := Package{ThetaJA: 0.3, AmbientC: 45}
	if _, err := NewMultiZonePlant(pkg, 40, []float64{1}); err == nil {
		t.Fatalf("single zone must error")
	}
	if _, err := NewMultiZonePlant(pkg, 40, []float64{0.5, 0}); err == nil {
		t.Fatalf("zero share must error")
	}
	if _, err := NewMultiZonePlant(pkg, 40, []float64{0.5, 0.2}); err == nil {
		t.Fatalf("shares not summing to 1 must error")
	}
	p, err := NewMultiZonePlant(pkg, 40, []float64{0.5, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Step([]float64{1}, 0.01); err == nil {
		t.Fatalf("power-count mismatch must error")
	}
}
