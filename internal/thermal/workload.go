package thermal

import "math/rand"

// WorkloadParams shapes a synthetic MPU power trace. Powers are at full
// frequency and nominal supply; the DTM controller derates them.
type WorkloadParams struct {
	// TheoreticalMaxW is the power-virus (synthetic worst case) level.
	TheoreticalMaxW float64
	// TypicalFraction is the mean power of real applications relative to
	// the theoretical maximum (the paper's ≈75 % for "power-hungry
	// applications"; ordinary code is lower still).
	TypicalFraction float64
	// BurstFraction is the fraction of intervals spent in bursts at
	// BurstLevel×TheoreticalMaxW.
	BurstFraction float64
	BurstLevel    float64
	// NoiseFraction is the relative amplitude of interval-to-interval
	// variation.
	NoiseFraction float64
	// Seed makes the trace deterministic.
	Seed int64
}

// DefaultWorkload returns parameters producing a power-hungry-application
// trace whose effective demand is ≈75 % of the theoretical worst case.
func DefaultWorkload(theoreticalMaxW float64) WorkloadParams {
	return WorkloadParams{
		TheoreticalMaxW: theoreticalMaxW,
		TypicalFraction: 0.70,
		BurstFraction:   0.15,
		BurstLevel:      0.95,
		NoiseFraction:   0.08,
		Seed:            1,
	}
}

// Generate produces a trace of n control intervals.
func (p WorkloadParams) Generate(n int) []float64 {
	rng := rand.New(rand.NewSource(p.Seed))
	out := make([]float64, n)
	base := p.TypicalFraction * p.TheoreticalMaxW
	inBurst := false
	burstLeft := 0
	for i := range out {
		if burstLeft == 0 {
			// Burst lengths geometric with mean 20 intervals; spacing set
			// so the duty cycle matches BurstFraction.
			if inBurst {
				inBurst = false
			}
			if rng.Float64() < p.BurstFraction/20 {
				inBurst = true
				burstLeft = 1 + rng.Intn(39)
			}
		} else {
			burstLeft--
		}
		level := base
		if inBurst {
			level = p.BurstLevel * p.TheoreticalMaxW
		}
		level *= 1 + p.NoiseFraction*(2*rng.Float64()-1)
		if level > p.TheoreticalMaxW {
			level = p.TheoreticalMaxW
		}
		if level < 0 {
			level = 0
		}
		out[i] = level
	}
	return out
}

// PowerVirus returns a flat trace at the theoretical worst case — the
// synthetic input sequence "not realized in practice" that packages would
// otherwise have to be designed for.
func PowerVirus(theoreticalMaxW float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = theoreticalMaxW
	}
	return out
}
