package thermal

import "math/rand"

// WorkloadParams shapes a synthetic MPU power trace. Powers are at full
// frequency and nominal supply; the DTM controller derates them.
type WorkloadParams struct {
	// TheoreticalMaxW is the power-virus (synthetic worst case) level.
	TheoreticalMaxW float64
	// TypicalFraction is the mean power of real applications relative to
	// the theoretical maximum (the paper's ≈75 % for "power-hungry
	// applications"; ordinary code is lower still).
	TypicalFraction float64
	// BurstFraction is the stationary fraction of intervals spent in
	// bursts at BurstLevel×TheoreticalMaxW.
	BurstFraction float64
	BurstLevel    float64
	// NoiseFraction is the relative amplitude of interval-to-interval
	// variation.
	NoiseFraction float64
	// Seed makes the trace deterministic.
	Seed int64
}

// DefaultWorkload returns parameters producing a power-hungry-application
// trace whose effective demand is ≈75 % of the theoretical worst case.
func DefaultWorkload(theoreticalMaxW float64) WorkloadParams {
	return WorkloadParams{
		TheoreticalMaxW: theoreticalMaxW,
		TypicalFraction: 0.70,
		BurstFraction:   0.15,
		BurstLevel:      0.95,
		NoiseFraction:   0.08,
		Seed:            1,
	}
}

// BurstMeanLength is the mean burst duration in control intervals. Burst
// lengths are geometric on {1, 2, ...} with this mean.
const BurstMeanLength = 20.0

// Generate produces a trace of n control intervals. Bursting is a two-state
// Markov chain: a burst continues with probability 1−1/BurstMeanLength (so
// lengths are geometric with mean BurstMeanLength), and the entry
// probability from the non-burst state is set so the chain's stationary
// burst occupancy equals BurstFraction exactly. Exactly two RNG draws are
// consumed per interval (state, then noise), so the trace is deterministic
// per Seed and a prefix of a longer trace from the same seed.
func (p WorkloadParams) Generate(n int) []float64 {
	s := p.Stream()
	out := make([]float64, n)
	for i := range out {
		out[i] = s.Next()
	}
	return out
}

// Stream generates the same trace as Generate one interval at a time, so
// arbitrarily long workloads never materialize as a slice. Generate(n)
// equals the first n values of a fresh Stream (prefix property).
type Stream struct {
	p           WorkloadParams
	rng         *rand.Rand
	enter, exit float64
	base        float64
	inBurst     bool
}

// Stream returns a fresh generator positioned at interval 0.
func (p WorkloadParams) Stream() *Stream {
	s := &Stream{
		p:    p,
		rng:  rand.New(rand.NewSource(p.Seed)),
		base: p.TypicalFraction * p.TheoreticalMaxW,
	}
	// Transition probabilities: exit = P(burst ends after this interval),
	// enter = P(non-burst interval starts a burst), chosen so the
	// stationary occupancy enter/(enter+exit) equals BurstFraction.
	s.exit = 1 / BurstMeanLength
	switch {
	case p.BurstFraction >= 1:
		s.enter, s.exit = 1, 0
	case p.BurstFraction > 0:
		s.enter = s.exit * p.BurstFraction / (1 - p.BurstFraction)
	}
	return s
}

// Next returns the next interval's power level.
func (s *Stream) Next() float64 {
	// One state draw per interval: a burst that ends cannot re-arm in
	// the same interval, and an interval is in-burst from its first
	// tick, so a length-L burst occupies exactly L intervals.
	if r := s.rng.Float64(); s.inBurst {
		s.inBurst = r >= s.exit
	} else {
		s.inBurst = r < s.enter
	}
	level := s.base
	if s.inBurst {
		level = s.p.BurstLevel * s.p.TheoreticalMaxW
	}
	level *= 1 + s.p.NoiseFraction*(2*s.rng.Float64()-1)
	if level > s.p.TheoreticalMaxW {
		level = s.p.TheoreticalMaxW
	}
	if level < 0 {
		level = 0
	}
	return level
}

// PowerVirus returns a flat trace at the theoretical worst case — the
// synthetic input sequence "not realized in practice" that packages would
// otherwise have to be designed for.
func PowerVirus(theoreticalMaxW float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = theoreticalMaxW
	}
	return out
}
