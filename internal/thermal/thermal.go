// Package thermal implements the paper's §2.1 packaging and dynamic-thermal-
// management (DTM) stack: the junction-to-ambient thermal-resistance model
// (its Eq. 1), a cooling-solution cost model with the 65→75 W heat-pipe cost
// step Intel reported, a discrete-time RC thermal plant, on-die temperature
// sensing, and the throttling / voltage-scaling controllers whose benefit the
// paper quantifies (designing the package for the ~75 % effective worst case
// instead of the theoretical worst case allows a 33 % higher θja).
package thermal

import (
	"fmt"
	"math"
)

// Package describes a packaging/cooling solution by its junction-to-ambient
// thermal resistance.
type Package struct {
	// ThetaJA is the junction-to-ambient thermal resistance, °C/W.
	ThetaJA float64
	// AmbientC is the ambient (outside package) temperature, °C.
	AmbientC float64
}

// JunctionTempC returns the steady-state junction temperature (Eq. 1
// rearranged): Tchip = Tambient + θja·Pchip.
func (p Package) JunctionTempC(powerW float64) float64 {
	return p.AmbientC + p.ThetaJA*powerW
}

// MaxPowerW returns the maximum sustained power that keeps the junction at
// or below tMaxC: Pchip = (Tchip − Tambient)/θja (Eq. 1).
func (p Package) MaxPowerW(tMaxC float64) float64 {
	if p.ThetaJA <= 0 {
		return math.Inf(1)
	}
	return (tMaxC - p.AmbientC) / p.ThetaJA
}

// RequiredThetaJA returns the θja needed to hold the junction at tMaxC while
// dissipating powerW.
func RequiredThetaJA(powerW, tMaxC, ambientC float64) (float64, error) {
	if powerW <= 0 {
		return 0, fmt.Errorf("thermal: non-positive power %g", powerW)
	}
	if tMaxC <= ambientC {
		return 0, fmt.Errorf("thermal: junction limit %g °C at or below ambient %g °C", tMaxC, ambientC)
	}
	return (tMaxC - ambientC) / powerW, nil
}

// Cooling-cost model ----------------------------------------------------------

// CoolingClass identifies a cooling-solution tier.
type CoolingClass int

const (
	PassiveHeatsink CoolingClass = iota
	ForcedAir
	HeatPipe
	Refrigeration
)

func (c CoolingClass) String() string {
	switch c {
	case PassiveHeatsink:
		return "passive heatsink"
	case ForcedAir:
		return "forced air"
	case HeatPipe:
		return "heat pipe"
	case Refrigeration:
		return "vapor-compression refrigeration"
	}
	return fmt.Sprintf("CoolingClass(%d)", int(c))
}

// coolingTier maps a required θja to the cheapest class able to deliver it,
// with a base cost and a per-watt cost. The tiers encode the paper's cost
// observations: forced air tops out near θja ≈ 0.8 °C/W so the 65→75 W
// step at the 1999 junction/ambient point forces heat pipes and roughly
// triples cost, and refrigeration runs ≈$1 per watt cooled.
type coolingTier struct {
	class      CoolingClass
	minThetaJA float64 // the tier can achieve θja ≥ this
	baseCost   float64
	perWatt    float64
}

var coolingTiers = []coolingTier{
	{PassiveHeatsink, 2.0, 2, 0.00},
	{ForcedAir, 0.80, 8, 0.05},
	{HeatPipe, 0.28, 30, 0.05},
	{Refrigeration, 0.02, 150, 1.00},
}

// CoolingSolution is a selected cooling tier with its cost for a design.
type CoolingSolution struct {
	Class   CoolingClass
	ThetaJA float64
	CostUSD float64
}

// SelectCooling picks the cheapest cooling class able to hold the junction
// at tMaxC for the given power and ambient, and returns its cost.
func SelectCooling(powerW, tMaxC, ambientC float64) (CoolingSolution, error) {
	need, err := RequiredThetaJA(powerW, tMaxC, ambientC)
	if err != nil {
		return CoolingSolution{}, err
	}
	for _, tier := range coolingTiers {
		if need >= tier.minThetaJA {
			return CoolingSolution{
				Class:   tier.class,
				ThetaJA: need,
				CostUSD: tier.baseCost + tier.perWatt*powerW,
			}, nil
		}
	}
	return CoolingSolution{}, fmt.Errorf("thermal: no cooling class achieves θja=%.3f °C/W", need)
}

// RC thermal plant ------------------------------------------------------------

// Plant is a first-order lumped thermal model of die + package: thermal
// capacitance CthJPerC charging through resistance θja to ambient.
type Plant struct {
	Package
	// CthJPerC is the lumped thermal capacitance (J/°C). Die + spreader of
	// a desktop MPU is of order 10–100 J/°C.
	CthJPerC float64
	// TempC is the current junction temperature.
	TempC float64
}

// NewPlant returns a plant initialized to ambient.
func NewPlant(pkg Package, cth float64) *Plant {
	return &Plant{Package: pkg, CthJPerC: cth, TempC: pkg.AmbientC}
}

// Step advances the plant by dt seconds while dissipating powerW, using the
// exact exponential solution of the first-order ODE
// Cth·dT/dt = P − (T − Tamb)/θja.
func (p *Plant) Step(powerW, dt float64) {
	tInf := p.AmbientC + p.ThetaJA*powerW
	tau := p.ThetaJA * p.CthJPerC
	if tau <= 0 {
		p.TempC = tInf
		return
	}
	p.TempC = tInf + (p.TempC-tInf)*math.Exp(-dt/tau)
}

// TimeConstant returns the plant's thermal time constant θja·Cth (s).
func (p *Plant) TimeConstant() float64 { return p.ThetaJA * p.CthJPerC }

// Sensor models the Pentium-4-style on-die thermal monitor: a diode-based
// temperature sensor with an offset and a trip comparator plus hysteresis.
type Sensor struct {
	// TripC is the comparator threshold.
	TripC float64
	// HysteresisC is released when the temperature falls TripC−HysteresisC.
	HysteresisC float64
	// OffsetC is the sensor's systematic error (reads high when positive).
	OffsetC float64

	tripped bool
}

// Read returns whether the sensor (given the true junction temperature)
// asserts the over-temperature signal.
func (s *Sensor) Read(tempC float64) bool {
	reading := tempC + s.OffsetC
	if s.tripped {
		if reading < s.TripC-s.HysteresisC {
			s.tripped = false
		}
	} else if reading >= s.TripC {
		s.tripped = true
	}
	return s.tripped
}

// Reset clears the sensor latch.
func (s *Sensor) Reset() { s.tripped = false }
