// Package device implements the compact MOSFET model the paper builds its
// analysis on: the velocity-saturated drain-current expression with parasitic
// source resistance (its Eqs. 2–3, after Chen & Hu), the exponential
// subthreshold off-current (Eq. 4), electrical-oxide-thickness effects
// (finite inversion-layer thickness plus gate depletion), DIBL, and
// temperature dependence. All width-normalized currents are in A/m
// (numerically equal to µA/µm).
package device

import (
	"fmt"
	"math"

	"nanometer/internal/mathx"
	"nanometer/internal/units"
)

// Polarity identifies the channel type of a device.
type Polarity int

const (
	NMOS Polarity = iota
	PMOS
)

func (p Polarity) String() string {
	if p == PMOS {
		return "PMOS"
	}
	return "NMOS"
}

// Default structural parameters shared across nodes.
const (
	// DefaultInversionThicknessM is the apparent oxide thickening from the
	// finite inversion-layer (quantization) charge centroid.
	DefaultInversionThicknessM = 0.4e-9
	// DefaultGateDepletionM is the apparent thickening from poly-gate
	// depletion; a metal gate eliminates it.
	DefaultGateDepletionM = 0.3e-9
	// DefaultSubthresholdSwing is the room-temperature subthreshold swing
	// the paper assumes throughout scaling (85 mV/decade, matching the
	// ITRS convention).
	DefaultSubthresholdSwing = 0.085
	// DefaultIoffPrefactorAPerM is the Eq. 4 prefactor: Ioff =
	// 10 µA/µm × 10^(−Vth/S). 10 µA/µm = 10 A/m.
	DefaultIoffPrefactorAPerM = 10.0
	// DefaultVsatMPerS is the carrier saturation velocity.
	DefaultVsatMPerS = 8.0e4
)

// Device is a width-normalized MOSFET. The zero value is not usable; build
// devices with ForNode or populate all fields.
type Device struct {
	Name     string
	Polarity Polarity

	// LeffM is the effective (as-etched) channel length.
	LeffM float64
	// ToxPhysicalM is the physical oxide thickness.
	ToxPhysicalM float64
	// InversionThicknessM and GateDepletionM are the apparent oxide
	// thickening terms; their sum is the paper's ≈0.7 nm electrical-vs-
	// physical gap. Setting GateDepletionM to zero models a metal gate.
	InversionThicknessM float64
	GateDepletionM      float64

	// MobilityM2PerVs is the effective channel mobility µeff. Per DESIGN.md
	// §2 this is the calibrated stand-in for the paper's SPICE decks.
	MobilityM2PerVs float64
	// VsatMPerS is the saturation velocity; Esat = 2·vsat/µeff.
	VsatMPerS float64
	// RsOhmM is the parasitic source resistance normalized to width (Ω·m).
	RsOhmM float64

	// Vth0 is the saturation threshold voltage at Vds = VddRef, 300 K.
	Vth0 float64
	// VddRef is the drain bias at which Vth0 is quoted (the node's nominal
	// supply). DIBL shifts the threshold away from this reference.
	VddRef float64
	// DIBL is the drain-induced barrier lowering coefficient (V threshold
	// reduction per V of drain bias above VddRef).
	DIBL float64
	// VthTempCoeffVPerK lowers the threshold as temperature rises.
	VthTempCoeffVPerK float64

	// SubthresholdSwing300K is the subthreshold swing at 300 K (V/decade);
	// it scales linearly with absolute temperature.
	SubthresholdSwing300K float64
	// IoffPrefactorAPerM is the Eq. 4 prefactor (A/m).
	IoffPrefactorAPerM float64
}

// Validate reports the first structurally invalid field, or nil.
func (d *Device) Validate() error {
	switch {
	case d.LeffM <= 0:
		return fmt.Errorf("device %s: Leff %g must be positive", d.Name, d.LeffM)
	case d.ToxPhysicalM <= 0:
		return fmt.Errorf("device %s: Tox %g must be positive", d.Name, d.ToxPhysicalM)
	case d.MobilityM2PerVs <= 0:
		return fmt.Errorf("device %s: mobility %g must be positive", d.Name, d.MobilityM2PerVs)
	case d.VsatMPerS <= 0:
		return fmt.Errorf("device %s: vsat %g must be positive", d.Name, d.VsatMPerS)
	case d.RsOhmM < 0:
		return fmt.Errorf("device %s: Rs %g must be non-negative", d.Name, d.RsOhmM)
	case d.SubthresholdSwing300K <= 0:
		return fmt.Errorf("device %s: subthreshold swing %g must be positive", d.Name, d.SubthresholdSwing300K)
	case d.IoffPrefactorAPerM <= 0:
		return fmt.Errorf("device %s: Ioff prefactor %g must be positive", d.Name, d.IoffPrefactorAPerM)
	case d.VddRef <= 0:
		return fmt.Errorf("device %s: VddRef %g must be positive", d.Name, d.VddRef)
	}
	return nil
}

// ToxElectricalM returns the electrical oxide thickness: physical thickness
// plus inversion-layer and gate-depletion corrections (≈ +0.7 nm for a poly
// gate, ≈ +0.4 nm for a metal gate).
func (d *Device) ToxElectricalM() float64 {
	return d.ToxPhysicalM + d.InversionThicknessM + d.GateDepletionM
}

// CoxElectrical returns the electrical gate capacitance per area (F/m²).
func (d *Device) CoxElectrical() float64 {
	return units.OxideCapacitance(d.ToxElectricalM())
}

// CoxPhysical returns the physical-oxide gate capacitance per area (F/m²).
func (d *Device) CoxPhysical() float64 {
	return units.OxideCapacitance(d.ToxPhysicalM)
}

// EsatVPerM returns the lateral field at which carrier velocity saturates.
func (d *Device) EsatVPerM() float64 { return 2 * d.VsatMPerS / d.MobilityM2PerVs }

// EsatLeffV returns the velocity-saturation voltage Esat·Leff.
func (d *Device) EsatLeffV() float64 { return d.EsatVPerM() * d.LeffM }

// SubthresholdSwing returns the swing (V/decade) at temperature T (kelvin);
// it scales with absolute temperature.
func (d *Device) SubthresholdSwing(tKelvin float64) float64 {
	return d.SubthresholdSwing300K * tKelvin / units.RoomTemperature
}

// BodyFactorN returns the subthreshold ideality factor n = S/(ln10·kT/q).
// By construction it is temperature-independent when S scales with T.
func (d *Device) BodyFactorN() float64 {
	return d.SubthresholdSwing300K / (math.Ln10 * units.ThermalVoltage(units.RoomTemperature))
}

// VthAt returns the effective threshold at drain bias vds and temperature T,
// including DIBL relative to VddRef and the temperature coefficient.
func (d *Device) VthAt(vds, tKelvin float64) float64 {
	vth := d.Vth0
	vth -= d.DIBL * (vds - d.VddRef)
	vth -= d.VthTempCoeffVPerK * (tKelvin - units.RoomTemperature)
	return vth
}

// overdriveEff returns a smoothed gate overdrive that transitions from
// strong inversion (Vgs−Vth) through moderate inversion to a subthreshold
// floor, so that drive current stays finite and realistically steep when the
// supply approaches the threshold (the Vdd = 0.2 V regime of Figure 3).
func (d *Device) overdriveEff(vgs, vds, tKelvin float64) float64 {
	vth := d.VthAt(vds, tKelvin)
	n := d.BodyFactorN()
	phiT := units.ThermalVoltage(tKelvin)
	w := 2 * n * phiT
	x := (vgs - vth) / w
	if x > 40 {
		return vgs - vth
	}
	return w * math.Log1p(math.Exp(x))
}

// Idsat0PerWidth implements Eq. 3: the intrinsic (Rs = 0) saturation drain
// current per unit width (A/m) at gate bias vgs, drain bias vds, and
// temperature T.
func (d *Device) Idsat0PerWidth(vgs, vds, tKelvin float64) float64 {
	vov := d.overdriveEff(vgs, vds, tKelvin)
	if vov <= 0 {
		return 0
	}
	esatL := d.EsatLeffV()
	return d.MobilityM2PerVs * d.CoxElectrical() / (2 * d.LeffM) *
		vov * vov / (1 + vov/esatL)
}

// IonPerWidth implements Eq. 2: the extrinsic saturation drive current per
// width (A/m) at Vgs = Vds = vdd, including the first-order source-
// resistance degradation.
func (d *Device) IonPerWidth(vdd, tKelvin float64) float64 {
	i0 := d.Idsat0PerWidth(vdd, vdd, tKelvin)
	if i0 == 0 {
		return 0
	}
	vov := d.overdriveEff(vdd, vdd, tKelvin)
	esatL := d.EsatLeffV()
	corr := 1 + i0*d.RsOhmM*(2/vov-1/(vov+esatL))
	if corr < 1 {
		corr = 1
	}
	return i0 / corr
}

// IoffPerWidth implements Eq. 4 with DIBL and temperature: the subthreshold
// off current per width (A/m) at Vgs = 0, Vds = vdd.
func (d *Device) IoffPerWidth(vdd, tKelvin float64) float64 {
	s := d.SubthresholdSwing(tKelvin)
	vth := d.VthAt(vdd, tKelvin)
	return d.IoffPrefactorAPerM * math.Pow(10, -vth/s)
}

// IonOverIoff returns the drive-to-leakage ratio at the given bias point.
func (d *Device) IonOverIoff(vdd, tKelvin float64) float64 {
	ioff := d.IoffPerWidth(vdd, tKelvin)
	if ioff == 0 {
		return math.Inf(1)
	}
	return d.IonPerWidth(vdd, tKelvin) / ioff
}

// WithVth returns a copy of the device with Vth0 replaced.
func (d *Device) WithVth(vth float64) *Device {
	c := *d
	c.Vth0 = vth
	return &c
}

// MetalGate returns a copy of the device with the gate-depletion component
// of the electrical oxide removed (Table 2's "metal gate" analysis).
func (d *Device) MetalGate() *Device {
	c := *d
	c.GateDepletionM = 0
	return &c
}

// SolveVthForIon returns the threshold voltage at which the device delivers
// exactly target A/m of drive current at supply vdd and temperature T. This
// is how Table 2's "Vth required to meet Ion" row is produced.
func (d *Device) SolveVthForIon(target, vdd, tKelvin float64) (float64, error) {
	if target <= 0 {
		return 0, fmt.Errorf("device: non-positive Ion target %g", target)
	}
	f := func(vth float64) float64 {
		return d.WithVth(vth).IonPerWidth(vdd, tKelvin) - target
	}
	lo, hi := -0.3, vdd // allow slightly negative thresholds (the 50 nm @0.6 V case is 0.04 V)
	flo, fhi := f(lo), f(hi)
	if flo < 0 {
		return 0, fmt.Errorf("device %s: cannot reach Ion %g A/m even at Vth=%g (max %g)",
			d.Name, target, lo, flo+target)
	}
	if fhi > 0 {
		// Even at Vth = Vdd the target is exceeded; extend upward.
		var err error
		lo, hi, err = mathx.FindBracket(f, lo, hi, 30)
		if err != nil {
			return 0, fmt.Errorf("device %s: no Vth bracket for Ion %g: %w", d.Name, target, err)
		}
	}
	return mathx.Brent(f, lo, hi, 1e-7)
}

// DelayMetric returns the CV/I gate-delay figure of merit (seconds) for a
// fan-out-of-fo inverter stage: fo gate loads switched through the device's
// drive current. It is used for normalized delay curves (Figure 3), where
// the constant prefactor cancels.
func (d *Device) DelayMetric(vdd, tKelvin float64, fo float64) float64 {
	ion := d.IonPerWidth(vdd, tKelvin)
	if ion <= 0 {
		return math.Inf(1)
	}
	cPerWidth := d.CoxElectrical() * d.LeffM // F/m of gate width
	return fo * cPerWidth * vdd / ion
}
