package device_test

import (
	"fmt"

	"nanometer/internal/device"
	"nanometer/internal/units"
)

// Solve the threshold that delivers the ITRS drive target at the 70 nm node
// and look at the leakage it implies — one column of the paper's Table 2.
func Example() {
	d := device.MustForNode(70)
	vth, err := d.SolveVthForIon(750, 0.9, units.RoomTemperature)
	if err != nil {
		panic(err)
	}
	ioff := d.WithVth(vth).IoffPerWidth(0.9, units.RoomTemperature)
	fmt.Printf("Vth = %.2f V, Ioff = %.0f nA/µm\n", vth, units.NAPerUMFromAmpsPerMeter(ioff))
	// Output:
	// Vth = 0.14 V, Ioff = 225 nA/µm
}

// The dual-Vth trade of Figure 2: 100 mV of threshold costs ≈15× leakage
// and buys drive current.
func ExampleDevice_WithVth() {
	d := device.MustForNode(70)
	low := d.WithVth(d.Vth0 - 0.1)
	ionGain := low.IonPerWidth(0.9, units.RoomTemperature)/d.IonPerWidth(0.9, units.RoomTemperature) - 1
	ioffX := low.IoffPerWidth(0.9, units.RoomTemperature) / d.IoffPerWidth(0.9, units.RoomTemperature)
	fmt.Printf("Ion +%.0f%%, Ioff ×%.0f\n", ionGain*100, ioffX)
	// Output:
	// Ion +16%, Ioff ×15
}

// The metal-gate variant of Table 2: removing gate depletion thins the
// electrical oxide and allows a higher threshold at the same drive.
func ExampleDevice_MetalGate() {
	d := device.MustForNode(35)
	mg := d.MetalGate()
	fmt.Printf("electrical oxide: %.1f nm → %.1f nm\n", d.ToxElectricalM()*1e9, mg.ToxElectricalM()*1e9)
	// Output:
	// electrical oxide: 1.3 nm → 1.0 nm
}
