package device

import (
	"fmt"
	"sync"

	"nanometer/internal/itrs"
	"nanometer/internal/mathx"
	"nanometer/internal/units"
)

// Per-node model parameters that are not in the roadmap table.
type nodeParams struct {
	// vthAnchor is the paper's Table 2 "Vth required to meet Ion" value at
	// the nominal supply; the mobility calibration targets it (DESIGN.md §2).
	vthAnchor float64
	// dibl is the drain-induced barrier lowering coefficient. It grows as
	// channels shorten; the values are chosen so that the paper's
	// "Pstatic decays roughly quadratically with Vdd at fixed Vth" holds at
	// the nanometer nodes (≈0.1 V/V at 35 nm gives Ioff ∝ Vdd over the
	// 0.2–0.6 V range).
	dibl float64
}

var paramsByNode = map[int]nodeParams{
	180: {vthAnchor: 0.30, dibl: 0.02},
	130: {vthAnchor: 0.29, dibl: 0.03},
	100: {vthAnchor: 0.22, dibl: 0.04},
	70:  {vthAnchor: 0.14, dibl: 0.06},
	50:  {vthAnchor: 0.04, dibl: 0.08},
	35:  {vthAnchor: 0.11, dibl: 0.10},
}

// pmosMobilityRatio is µp/µn; hole mobility is roughly 0.4× electron
// mobility in these generations.
const pmosMobilityRatio = 0.4

type calibKey struct {
	node int
	pol  Polarity
}

// calibEntry is a once-cell: the first goroutine to claim a key runs the
// calibration, every other goroutine blocks on the Once and then reads the
// immutable result. Compared with the old global mutex this keeps concurrent
// reproduction jobs from serializing on cache *hits* (the common case) and
// from holding a lock across the Brent solve on misses.
type calibEntry struct {
	once sync.Once
	dev  *Device
	err  error
}

// calibCache maps calibKey → *calibEntry. Entries with err != nil are kept
// (the inputs are static tables, so a failure is deterministic and retrying
// cannot succeed).
var calibCache sync.Map

// ForNode returns the calibrated NMOS device model for a roadmap node. The
// returned device is a fresh copy; callers may mutate it.
func ForNode(drawnNM int) (*Device, error) { return forNode(drawnNM, NMOS) }

// ForNodePMOS returns the calibrated PMOS companion device: identical
// structure with hole mobility (0.4× electron) and the same threshold
// magnitude. All biases are expressed as magnitudes, so PMOS devices are
// used with positive voltages throughout.
func ForNodePMOS(drawnNM int) (*Device, error) { return forNode(drawnNM, PMOS) }

// MustForNode is ForNode for known-good node literals.
func MustForNode(drawnNM int) *Device {
	d, err := ForNode(drawnNM)
	if err != nil {
		panic(err)
	}
	return d
}

// MustForNodePMOS is ForNodePMOS for known-good node literals.
func MustForNodePMOS(drawnNM int) *Device {
	d, err := ForNodePMOS(drawnNM)
	if err != nil {
		panic(err)
	}
	return d
}

func forNode(drawnNM int, pol Polarity) (*Device, error) {
	e, _ := calibCache.LoadOrStore(calibKey{drawnNM, pol}, &calibEntry{})
	entry := e.(*calibEntry)
	entry.once.Do(func() { entry.dev, entry.err = calibrate(drawnNM, pol) })
	if entry.err != nil {
		return nil, entry.err
	}
	c := *entry.dev
	return &c, nil
}

// calibrate builds and mobility-calibrates the device model for one node and
// polarity. It is called exactly once per key, via the cache's once-cell.
func calibrate(drawnNM int, pol Polarity) (*Device, error) {
	node, err := itrs.ByNode(drawnNM)
	if err != nil {
		return nil, err
	}
	p, ok := paramsByNode[drawnNM]
	if !ok {
		return nil, fmt.Errorf("device: no model parameters for %d nm", drawnNM)
	}
	d := &Device{
		Name:                fmt.Sprintf("%s-%dnm", pol, drawnNM),
		Polarity:            pol,
		LeffM:               node.LeffM,
		ToxPhysicalM:        node.ToxPhysicalM,
		InversionThicknessM: DefaultInversionThicknessM,
		GateDepletionM:      DefaultGateDepletionM,
		VsatMPerS:           DefaultVsatMPerS,
		RsOhmM:              node.RsOhmM,
		Vth0:                p.vthAnchor,
		VddRef:              node.Vdd,
		DIBL:                p.dibl,
		// The paper's Eq. 4 carries temperature only through the
		// subthreshold swing, so the default Vth temperature coefficient is
		// zero; callers modeling Vth(T) explicitly can set the field.
		VthTempCoeffVPerK:     0,
		SubthresholdSwing300K: DefaultSubthresholdSwing,
		IoffPrefactorAPerM:    DefaultIoffPrefactorAPerM,
	}
	mob, err := CalibrateMobility(d, node.IonTargetAPerM, node.Vdd, units.RoomTemperature)
	if err != nil {
		return nil, fmt.Errorf("device: calibrating %d nm %s: %w", drawnNM, pol, err)
	}
	d.MobilityM2PerVs = mob
	if pol == PMOS {
		// Holes are slower; PMOS delivers ~0.4× the NMOS drive at the same
		// width, which is why the paper's reference inverter uses Wp = 2·Wn.
		d.MobilityM2PerVs *= pmosMobilityRatio
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// CalibrateMobility solves for the effective mobility at which the device
// (with its current Vth0) delivers ionTarget A/m at supply vdd and
// temperature T. This pins the one free prefactor of the compact model to
// the paper's Table 2 threshold anchors, standing in for the SPICE decks we
// do not have (DESIGN.md §2). The device's MobilityM2PerVs field is ignored
// and left unchanged.
func CalibrateMobility(d *Device, ionTarget, vdd, tKelvin float64) (float64, error) {
	f := func(mob float64) float64 {
		c := *d
		c.MobilityM2PerVs = mob
		return c.IonPerWidth(vdd, tKelvin) - ionTarget
	}
	// 20 to 3000 cm²/Vs in m²/Vs.
	lo, hi := 2e-3, 3e-1
	if f(lo) > 0 {
		return 0, fmt.Errorf("device: Ion target %g A/m met even at mobility %g", ionTarget, lo)
	}
	if f(hi) < 0 {
		return 0, fmt.Errorf("device: Ion target %g A/m unreachable at mobility %g", ionTarget, hi)
	}
	return mathx.Brent(f, lo, hi, 1e-9)
}
