package device

import (
	"fmt"
	"sync"

	"nanometer/internal/itrs"
	"nanometer/internal/mathx"
	"nanometer/internal/units"
)

// Params carries the per-node model parameters that are not in the roadmap
// table itself.
type Params struct {
	// VthAnchor is the paper's Table 2 "Vth required to meet Ion" value at
	// the nominal supply; the mobility calibration targets it (DESIGN.md §2).
	VthAnchor float64
	// DIBL is the drain-induced barrier lowering coefficient. It grows as
	// channels shorten; the values are chosen so that the paper's
	// "Pstatic decays roughly quadratically with Vdd at fixed Vth" holds at
	// the nanometer nodes (≈0.1 V/V at 35 nm gives Ioff ∝ Vdd over the
	// 0.2–0.6 V range).
	DIBL float64
}

var baseParams = map[int]Params{
	180: {VthAnchor: 0.30, DIBL: 0.02},
	130: {VthAnchor: 0.29, DIBL: 0.03},
	100: {VthAnchor: 0.22, DIBL: 0.04},
	70:  {VthAnchor: 0.14, DIBL: 0.06},
	50:  {VthAnchor: 0.04, DIBL: 0.08},
	35:  {VthAnchor: 0.11, DIBL: 0.10},
}

// BaseParams returns the transcribed Table 2 device anchors for a node of
// the base roadmap, and whether the node has any. Scenario resolution uses
// it to seed extension nodes and to tell which nodes need explicit anchors.
func BaseParams(drawnNM int) (Params, bool) {
	p, ok := baseParams[drawnNM]
	return p, ok
}

// pmosMobilityRatio is µp/µn; hole mobility is roughly 0.4× electron
// mobility in these generations.
const pmosMobilityRatio = 0.4

type calibKey struct {
	node int
	pol  Polarity
}

// calibEntry is a once-cell: the first goroutine to claim a key runs the
// calibration, every other goroutine blocks on the Once and then reads the
// immutable result. Compared with a mutex this keeps concurrent reproduction
// jobs from serializing on cache *hits* (the common case) and from holding a
// lock across the Brent solve on misses.
type calibEntry struct {
	once sync.Once
	dev  *Device
	err  error
}

// Lab is a device laboratory: a roadmap table plus its per-node model
// parameters and a calibration cache. All device models for one scenario
// come out of one Lab; the package-level ForNode helpers delegate to
// BaseLab(). A Lab is safe for concurrent use.
type Lab struct {
	table  *itrs.Table
	params map[int]Params
	// cache maps calibKey → *calibEntry. Entries with err != nil are kept
	// (the inputs are immutable once the Lab is built, so a failure is
	// deterministic and retrying cannot succeed).
	cache sync.Map
}

// NewLab builds a laboratory over the given table. params supplies the Vth
// anchor and DIBL for each node; nodes present in the base parameter set
// fall back to it when absent from params. Every node of the table must end
// up with parameters.
func NewLab(table *itrs.Table, params map[int]Params) (*Lab, error) {
	merged := make(map[int]Params, table.Len())
	for _, nm := range table.NodesNM() {
		if p, ok := params[nm]; ok {
			merged[nm] = p
			continue
		}
		if p, ok := baseParams[nm]; ok {
			merged[nm] = p
			continue
		}
		return nil, fmt.Errorf("device: no model parameters (Vth anchor, DIBL) for %d nm", nm)
	}
	for _, nm := range table.NodesNM() {
		p := merged[nm]
		if p.VthAnchor < -0.2 || p.VthAnchor > 1.5 {
			return nil, fmt.Errorf("device: %d nm Vth anchor %g V outside [-0.2, 1.5]", nm, p.VthAnchor)
		}
		if p.DIBL < 0 || p.DIBL > 0.5 {
			return nil, fmt.Errorf("device: %d nm DIBL %g V/V outside [0, 0.5]", nm, p.DIBL)
		}
	}
	return &Lab{table: table, params: merged}, nil
}

// baseLab is the process-wide laboratory over the transcribed base roadmap;
// the package-level ForNode family keeps its historical behavior (and its
// shared calibration cache) by delegating here.
var (
	baseLabOnce sync.Once
	baseLabVal  *Lab
)

// BaseLab returns the laboratory bound to the base ITRS-2000 table.
func BaseLab() *Lab {
	baseLabOnce.Do(func() {
		lab, err := NewLab(itrs.Base(), nil)
		if err != nil {
			panic(err) // base table and anchors are static and test-covered
		}
		baseLabVal = lab
	})
	return baseLabVal
}

// Table returns the roadmap table the Lab calibrates against.
func (l *Lab) Table() *itrs.Table { return l.table }

// Node returns the Lab's roadmap entry for the given drawn feature size.
func (l *Lab) Node(drawnNM int) (itrs.Node, error) { return l.table.ByNode(drawnNM) }

// MustNode is Node for known-good literals; it panics on unknown nodes.
func (l *Lab) MustNode(drawnNM int) itrs.Node { return l.table.MustNode(drawnNM) }

// NodesNM returns the Lab's node feature sizes in descending order.
func (l *Lab) NodesNM() []int { return l.table.NodesNM() }

// ForNode returns the calibrated NMOS device model for a roadmap node. The
// returned device is a fresh copy; callers may mutate it.
func (l *Lab) ForNode(drawnNM int) (*Device, error) { return l.forNode(drawnNM, NMOS) }

// ForNodePMOS returns the calibrated PMOS companion device: identical
// structure with hole mobility (0.4× electron) and the same threshold
// magnitude. All biases are expressed as magnitudes, so PMOS devices are
// used with positive voltages throughout.
func (l *Lab) ForNodePMOS(drawnNM int) (*Device, error) { return l.forNode(drawnNM, PMOS) }

// MustForNode is ForNode for known-good node literals.
func (l *Lab) MustForNode(drawnNM int) *Device {
	d, err := l.ForNode(drawnNM)
	if err != nil {
		panic(err)
	}
	return d
}

func (l *Lab) forNode(drawnNM int, pol Polarity) (*Device, error) {
	e, _ := l.cache.LoadOrStore(calibKey{drawnNM, pol}, &calibEntry{})
	entry := e.(*calibEntry)
	entry.once.Do(func() { entry.dev, entry.err = l.calibrate(drawnNM, pol) })
	if entry.err != nil {
		return nil, entry.err
	}
	c := *entry.dev
	return &c, nil
}

// ForNode returns the calibrated NMOS device model for a node of the base
// roadmap.
func ForNode(drawnNM int) (*Device, error) { return BaseLab().ForNode(drawnNM) }

// ForNodePMOS returns the calibrated PMOS companion device for a node of the
// base roadmap.
func ForNodePMOS(drawnNM int) (*Device, error) { return BaseLab().ForNodePMOS(drawnNM) }

// MustForNode is ForNode for known-good node literals.
func MustForNode(drawnNM int) *Device {
	d, err := ForNode(drawnNM)
	if err != nil {
		panic(err)
	}
	return d
}

// MustForNodePMOS is ForNodePMOS for known-good node literals.
func MustForNodePMOS(drawnNM int) *Device {
	d, err := ForNodePMOS(drawnNM)
	if err != nil {
		panic(err)
	}
	return d
}

// calibrate builds and mobility-calibrates the device model for one node and
// polarity. It is called exactly once per key, via the cache's once-cell.
func (l *Lab) calibrate(drawnNM int, pol Polarity) (*Device, error) {
	node, err := l.table.ByNode(drawnNM)
	if err != nil {
		return nil, err
	}
	p, ok := l.params[drawnNM]
	if !ok {
		return nil, fmt.Errorf("device: no model parameters for %d nm", drawnNM)
	}
	d := &Device{
		Name:                fmt.Sprintf("%s-%dnm", pol, drawnNM),
		Polarity:            pol,
		LeffM:               node.LeffM,
		ToxPhysicalM:        node.ToxPhysicalM,
		InversionThicknessM: DefaultInversionThicknessM,
		GateDepletionM:      DefaultGateDepletionM,
		VsatMPerS:           DefaultVsatMPerS,
		RsOhmM:              node.RsOhmM,
		Vth0:                p.VthAnchor,
		VddRef:              node.Vdd,
		DIBL:                p.DIBL,
		// The paper's Eq. 4 carries temperature only through the
		// subthreshold swing, so the default Vth temperature coefficient is
		// zero; callers modeling Vth(T) explicitly can set the field.
		VthTempCoeffVPerK:     0,
		SubthresholdSwing300K: DefaultSubthresholdSwing,
		IoffPrefactorAPerM:    DefaultIoffPrefactorAPerM,
	}
	mob, err := CalibrateMobility(d, node.IonTargetAPerM, node.Vdd, units.RoomTemperature)
	if err != nil {
		return nil, fmt.Errorf("device: calibrating %d nm %s: %w", drawnNM, pol, err)
	}
	d.MobilityM2PerVs = mob
	if pol == PMOS {
		// Holes are slower; PMOS delivers ~0.4× the NMOS drive at the same
		// width, which is why the paper's reference inverter uses Wp = 2·Wn.
		d.MobilityM2PerVs *= pmosMobilityRatio
	}
	if err := d.Validate(); err != nil {
		return nil, err
	}
	return d, nil
}

// CalibrateMobility solves for the effective mobility at which the device
// (with its current Vth0) delivers ionTarget A/m at supply vdd and
// temperature T. This pins the one free prefactor of the compact model to
// the paper's Table 2 threshold anchors, standing in for the SPICE decks we
// do not have (DESIGN.md §2). The device's MobilityM2PerVs field is ignored
// and left unchanged.
func CalibrateMobility(d *Device, ionTarget, vdd, tKelvin float64) (float64, error) {
	f := func(mob float64) float64 {
		c := *d
		c.MobilityM2PerVs = mob
		return c.IonPerWidth(vdd, tKelvin) - ionTarget
	}
	// 20 to 3000 cm²/Vs in m²/Vs.
	lo, hi := 2e-3, 3e-1
	if f(lo) > 0 {
		return 0, fmt.Errorf("device: Ion target %g A/m met even at mobility %g", ionTarget, lo)
	}
	if f(hi) < 0 {
		return 0, fmt.Errorf("device: Ion target %g A/m unreachable at mobility %g", ionTarget, hi)
	}
	return mathx.Brent(f, lo, hi, 1e-9)
}
