package device

import (
	"sync"
	"testing"
)

// TestForNodeConcurrent hammers the calibration cache from many goroutines
// across every node and both polarities. Under `go test -race` this verifies
// the once-cell cache: no data race on misses (first calibration) or hits,
// every caller sees the same calibrated values, and every caller gets a
// private copy it can mutate freely.
func TestForNodeConcurrent(t *testing.T) {
	nodes := []int{180, 130, 100, 70, 50, 35}
	const goroutines = 16
	devs := make([][]*Device, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for _, n := range nodes {
				d, err := ForNode(n)
				if err != nil {
					t.Errorf("ForNode(%d): %v", n, err)
					return
				}
				p, err := ForNodePMOS(n)
				if err != nil {
					t.Errorf("ForNodePMOS(%d): %v", n, err)
					return
				}
				devs[g] = append(devs[g], d, p)
			}
		}(g)
	}
	wg.Wait()
	if t.Failed() {
		return
	}
	// Determinism: every goroutine saw identical calibrations.
	for g := 1; g < goroutines; g++ {
		for i := range devs[0] {
			if *devs[g][i] != *devs[0][i] {
				t.Fatalf("goroutine %d device %d differs: %+v vs %+v", g, i, devs[g][i], devs[0][i])
			}
		}
	}
	// Isolation: callers own their copies; mutating one must not leak into
	// the cache or other callers.
	devs[0][0].Vth0 += 1
	fresh, err := ForNode(nodes[0])
	if err != nil {
		t.Fatal(err)
	}
	if *fresh == *devs[0][0] {
		t.Fatal("mutation leaked into the calibration cache")
	}
	if *fresh != *devs[1][0] {
		t.Fatal("cache returned a drifted device")
	}
}

// TestForNodeConcurrentErrors checks the failure path of the once-cell: an
// unknown node fails deterministically for every concurrent caller without
// racing on the cached error.
func TestForNodeConcurrentErrors(t *testing.T) {
	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if _, err := ForNode(17); err == nil {
				t.Error("unknown node must error")
			}
		}()
	}
	wg.Wait()
}
