package device

import (
	"math"
	"testing"
	"testing/quick"

	"nanometer/internal/itrs"
	"nanometer/internal/units"
)

func TestForNodeAllNodes(t *testing.T) {
	for _, nm := range itrs.Nodes() {
		n, err := ForNode(nm)
		if err != nil {
			t.Fatalf("%d nm NMOS: %v", nm, err)
		}
		if err := n.Validate(); err != nil {
			t.Fatalf("%d nm NMOS invalid: %v", nm, err)
		}
		p, err := ForNodePMOS(nm)
		if err != nil {
			t.Fatalf("%d nm PMOS: %v", nm, err)
		}
		if p.MobilityM2PerVs >= n.MobilityM2PerVs {
			t.Errorf("%d nm: hole mobility must be below electron mobility", nm)
		}
	}
}

func TestForNodeUnknown(t *testing.T) {
	if _, err := ForNode(65); err == nil {
		t.Fatalf("unknown node must error")
	}
}

func TestForNodeReturnsCopies(t *testing.T) {
	a := MustForNode(100)
	a.Vth0 = 99
	b := MustForNode(100)
	if b.Vth0 == 99 {
		t.Fatalf("ForNode must return independent copies")
	}
}

func TestCalibrationHitsIonTarget(t *testing.T) {
	// The mobility calibration must make every node deliver exactly the
	// ITRS 750 µA/µm at nominal conditions.
	for _, nm := range itrs.Nodes() {
		d := MustForNode(nm)
		node := itrs.MustNode(nm)
		ion := d.IonPerWidth(node.Vdd, units.RoomTemperature)
		if !units.ApproxEqual(ion, node.IonTargetAPerM, 1e-6, 0) {
			t.Errorf("%d nm: Ion = %g A/m, want %g", nm, ion, node.IonTargetAPerM)
		}
	}
}

func TestElectricalOxide(t *testing.T) {
	d := MustForNode(100)
	// Poly gate: physical + 0.7 nm (0.4 inversion + 0.3 depletion).
	if got := d.ToxElectricalM() - d.ToxPhysicalM; math.Abs(got-0.7e-9) > 1e-12 {
		t.Fatalf("electrical-physical gap = %g, want 0.7 nm", got)
	}
	mg := d.MetalGate()
	if got := mg.ToxElectricalM() - mg.ToxPhysicalM; math.Abs(got-0.4e-9) > 1e-12 {
		t.Fatalf("metal gate gap = %g, want 0.4 nm (inversion layer only)", got)
	}
	if mg.CoxElectrical() <= d.CoxElectrical() {
		t.Fatalf("metal gate must have higher electrical capacitance")
	}
	if d.CoxPhysical() <= d.CoxElectrical() {
		t.Fatalf("physical-oxide capacitance exceeds electrical by construction")
	}
}

func TestIoffEquation4(t *testing.T) {
	// At the reference drain bias (no DIBL shift) and 300 K, Eq. 4 is
	// exactly 10 µA/µm × 10^(−Vth/85 mV).
	d := MustForNode(70)
	for _, vth := range []float64{0.1, 0.2, 0.3, 0.4} {
		got := d.WithVth(vth).IoffPerWidth(d.VddRef, units.RoomTemperature)
		want := 10 * math.Pow(10, -vth/0.085)
		if !units.ApproxEqual(got, want, 1e-9, 0) {
			t.Errorf("Ioff(Vth=%g) = %g, want %g", vth, got, want)
		}
	}
}

func TestIoffDIBL(t *testing.T) {
	d := MustForNode(35)
	lo := d.IoffPerWidth(0.3, units.RoomTemperature)
	hi := d.IoffPerWidth(0.6, units.RoomTemperature)
	if hi <= lo {
		t.Fatalf("DIBL must raise Ioff with drain bias: %g vs %g", hi, lo)
	}
	// With DIBL = 0.1 V/V, a 0.3 V bias reduction raises Vth by 30 mV →
	// Ioff ratio 10^(0.030/0.085).
	want := math.Pow(10, 0.1*0.3/0.085)
	if !units.ApproxEqual(hi/lo, want, 1e-6, 0) {
		t.Fatalf("DIBL ratio = %g, want %g", hi/lo, want)
	}
}

func TestSubthresholdSwingTemperature(t *testing.T) {
	d := MustForNode(50)
	if got := d.SubthresholdSwing(300); got != 0.085 {
		t.Fatalf("S(300 K) = %g, want 0.085", got)
	}
	if got := d.SubthresholdSwing(358.15); !units.ApproxEqual(got, 0.085*358.15/300, 1e-12, 0) {
		t.Fatalf("S(85 °C) = %g", got)
	}
	// Leakage rises with temperature.
	if d.IoffPerWidth(0.6, 358.15) <= d.IoffPerWidth(0.6, 300) {
		t.Fatalf("Ioff must rise with temperature")
	}
}

func TestTable2VthAnchors(t *testing.T) {
	// The calibration targets the paper's Table 2 thresholds exactly at
	// nominal supply and 300 K.
	anchors := map[int]float64{180: 0.30, 130: 0.29, 100: 0.22, 70: 0.14, 50: 0.04, 35: 0.11}
	for nm, want := range anchors {
		d := MustForNode(nm)
		node := itrs.MustNode(nm)
		vth, err := d.SolveVthForIon(node.IonTargetAPerM, node.Vdd, units.RoomTemperature)
		if err != nil {
			t.Fatalf("%d nm: %v", nm, err)
		}
		if math.Abs(vth-want) > 1e-4 {
			t.Errorf("%d nm: solved Vth = %.4f, paper anchor %.2f", nm, vth, want)
		}
	}
}

func TestSolveVthMonotoneRoundTrip(t *testing.T) {
	d := MustForNode(100)
	node := itrs.MustNode(100)
	// Property: solving for a target and evaluating gives the target back.
	f := func(seed uint8) bool {
		target := 300 + float64(seed)*3 // 300–1065 µA/µm
		vth, err := d.SolveVthForIon(target, node.Vdd, units.RoomTemperature)
		if err != nil {
			return false
		}
		got := d.WithVth(vth).IonPerWidth(node.Vdd, units.RoomTemperature)
		return units.ApproxEqual(got, target, 1e-5, 0)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSolveVthErrors(t *testing.T) {
	d := MustForNode(100)
	if _, err := d.SolveVthForIon(-1, 1.2, 300); err == nil {
		t.Fatalf("negative target must error")
	}
	if _, err := d.SolveVthForIon(1e9, 1.2, 300); err == nil {
		t.Fatalf("unreachable target must error")
	}
}

func TestIonMonotonicity(t *testing.T) {
	d := MustForNode(70)
	T := units.RoomTemperature
	// Increasing Vdd increases Ion.
	prev := 0.0
	for _, vdd := range []float64{0.5, 0.7, 0.9, 1.1} {
		ion := d.IonPerWidth(vdd, T)
		if ion <= prev {
			t.Fatalf("Ion must increase with Vdd: %g at %g V", ion, vdd)
		}
		prev = ion
	}
	// Increasing Vth decreases Ion.
	prev = math.Inf(1)
	for _, vth := range []float64{0.1, 0.2, 0.3, 0.4} {
		ion := d.WithVth(vth).IonPerWidth(0.9, T)
		if ion >= prev {
			t.Fatalf("Ion must decrease with Vth: %g at %g V", ion, vth)
		}
		prev = ion
	}
}

func TestRsDegradesDrive(t *testing.T) {
	d := MustForNode(100)
	noRs := *d
	noRs.RsOhmM = 0
	T := units.RoomTemperature
	if noRs.IonPerWidth(1.2, T) <= d.IonPerWidth(1.2, T) {
		t.Fatalf("parasitic source resistance must degrade drive current")
	}
	// And Ion never exceeds the intrinsic Idsat0.
	if d.IonPerWidth(1.2, T) > d.Idsat0PerWidth(1.2, 1.2, T) {
		t.Fatalf("extrinsic drive exceeds intrinsic")
	}
}

func TestDriveBelowThresholdIsFiniteAndSmall(t *testing.T) {
	// The moderate-inversion smoothing must keep current finite and small
	// (but nonzero) at Vdd near or below Vth — the Figure 3 regime.
	d := MustForNode(35)
	T := units.RoomTemperature
	iAt := func(vdd float64) float64 { return d.IonPerWidth(vdd, T) }
	if iAt(0.12) <= 0 {
		t.Fatalf("drive must stay positive just above threshold")
	}
	if iAt(0.12) >= iAt(0.3) {
		t.Fatalf("drive must fall steeply approaching the threshold")
	}
}

func TestDelayMetric(t *testing.T) {
	d := MustForNode(35)
	T := units.RoomTemperature
	// Delay falls as supply rises.
	if d.DelayMetric(0.3, T, 4) <= d.DelayMetric(0.6, T, 4) {
		t.Fatalf("delay must fall with supply")
	}
	// A deeply cut-off device still conducts in subthreshold (the model is
	// smooth), but its delay must be astronomically larger.
	if d.WithVth(2).DelayMetric(0.6, T, 4) < 1e6*d.DelayMetric(0.6, T, 4) {
		t.Fatalf("cut-off device must be many orders of magnitude slower")
	}
}

func TestValidateCatchesEachField(t *testing.T) {
	base := MustForNode(100)
	mutations := []func(*Device){
		func(d *Device) { d.LeffM = 0 },
		func(d *Device) { d.ToxPhysicalM = -1 },
		func(d *Device) { d.MobilityM2PerVs = 0 },
		func(d *Device) { d.VsatMPerS = 0 },
		func(d *Device) { d.RsOhmM = -1 },
		func(d *Device) { d.SubthresholdSwing300K = 0 },
		func(d *Device) { d.IoffPrefactorAPerM = 0 },
		func(d *Device) { d.VddRef = 0 },
	}
	for i, mutate := range mutations {
		d := *base
		mutate(&d)
		if err := d.Validate(); err == nil {
			t.Errorf("mutation %d not caught by Validate", i)
		}
	}
}

func TestCalibrateMobilityErrors(t *testing.T) {
	d := MustForNode(100)
	if _, err := CalibrateMobility(d, 1e9, 1.2, 300); err == nil {
		t.Fatalf("unreachable target must error")
	}
	if _, err := CalibrateMobility(d, 1e-9, 1.2, 300); err == nil {
		t.Fatalf("trivially met target must error")
	}
}

func TestIonOverIoff(t *testing.T) {
	d := MustForNode(100)
	r := d.IonOverIoff(1.2, units.RoomTemperature)
	// 750 µA/µm over 26 nA/µm ≈ 29k.
	if r < 1e4 || r > 1e5 {
		t.Fatalf("Ion/Ioff = %g, expected ~3e4 at 100 nm", r)
	}
}

func TestPolarityString(t *testing.T) {
	if NMOS.String() != "NMOS" || PMOS.String() != "PMOS" {
		t.Fatalf("polarity strings broken")
	}
}
