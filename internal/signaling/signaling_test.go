package signaling

import (
	"testing"

	"nanometer/internal/itrs"
	"nanometer/internal/units"
	"nanometer/internal/wire"
)

func testLink(scheme Scheme, swing float64) Link {
	return Link{
		Scheme:  scheme,
		Line:    wire.MustForNode(50, wire.Global),
		LengthM: 6e-3,
		Vdd:     0.6,
		SwingV:  swing,
	}
}

func TestValidate(t *testing.T) {
	good := testLink(DifferentialLowSwing, 0.06)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Link{
		{Scheme: LowSwing, Line: good.Line, LengthM: 0, Vdd: 0.6, SwingV: 0.06},
		{Scheme: LowSwing, Line: good.Line, LengthM: 1e-3, Vdd: 0, SwingV: 0.06},
		{Scheme: LowSwing, Line: good.Line, LengthM: 1e-3, Vdd: 0.6, SwingV: 0},
		{Scheme: LowSwing, Line: good.Line, LengthM: 1e-3, Vdd: 0.6, SwingV: 0.7},
	}
	for i, l := range bad {
		if err := l.Validate(); err == nil {
			t.Errorf("bad link %d passed validation", i)
		}
	}
	// Full swing ignores SwingV.
	fs := testLink(FullSwingRepeated, 0)
	if err := fs.Validate(); err != nil {
		t.Fatalf("full swing with zero SwingV must validate: %v", err)
	}
}

func TestEnergyRatioAlphaStyle(t *testing.T) {
	// Differential at 10 % swing: two wires × 10 % swing = 20 % of the
	// full-swing single wire energy, plus a small receiver term.
	cmp, err := Compare(wire.MustForNode(50, wire.Global), 6e-3, 0.6, 0.10, DifferentialLowSwing)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.EnergyRatio < 0.18 || cmp.EnergyRatio > 0.30 {
		t.Fatalf("differential 10%% swing energy ratio = %.2f, want ≈0.2", cmp.EnergyRatio)
	}
	// Single-ended low swing halves that again (one wire).
	cmpSE, err := Compare(wire.MustForNode(50, wire.Global), 6e-3, 0.6, 0.10, LowSwing)
	if err != nil {
		t.Fatal(err)
	}
	if cmpSE.EnergyRatio >= cmp.EnergyRatio {
		t.Fatalf("single-ended low swing must use less energy than differential")
	}
}

func TestEnergyScalesWithSwing(t *testing.T) {
	l5 := testLink(LowSwing, 0.05)
	l10 := testLink(LowSwing, 0.10)
	e5 := l5.EnergyPerTransition() - l5.receiverEnergy()
	e10 := l10.EnergyPerTransition() - l10.receiverEnergy()
	if !units.ApproxEqual(e10, 2*e5, 1e-9, 0) {
		t.Fatalf("wire energy must be linear in swing: %g vs %g", e10, e5)
	}
}

func TestPowerIncludesReceiverStatic(t *testing.T) {
	l := testLink(DifferentialLowSwing, 0.06)
	if got := l.Power(0); got != l.receiverStatic() {
		t.Fatalf("zero-toggle power must equal the sense-amp bias, got %g", got)
	}
	if l.Power(1e9) <= l.Power(1e8) {
		t.Fatalf("power must grow with toggle rate")
	}
}

func TestDelayLowSwingBeatsFullSwingUnrepeated(t *testing.T) {
	// On the same unrepeated line, a low-swing receiver fires earlier on
	// the RC diffusion than a full-rail CMOS threshold.
	fs := testLink(FullSwingRepeated, 0)
	ls := testLink(LowSwing, 0.06)
	ls.DriverCurrentA = 5e-3
	fs.DriverCurrentA = 5e-3
	if ls.Delay() >= fs.Delay() {
		t.Fatalf("low swing (%g) must beat full swing (%g) on the same unrepeated line",
			ls.Delay(), fs.Delay())
	}
}

func TestPeakCurrentRelief(t *testing.T) {
	fs := testLink(FullSwingRepeated, 0)
	diff := testLink(DifferentialLowSwing, 0.06)
	if diff.PeakSupplyCurrent(0) >= fs.PeakSupplyCurrent(0) {
		t.Fatalf("low-swing drivers must draw smaller peak currents")
	}
}

func TestNoiseClosure(t *testing.T) {
	// Differential + shielding must close where unshielded single-ended
	// low swing cannot.
	diff := testLink(DifferentialLowSwing, 0.06)
	se := testLink(LowSwing, 0.06)
	nDiff := diff.Noise(true)
	nSE := se.Noise(false)
	if nDiff.SNR <= nSE.SNR {
		t.Fatalf("differential shielded SNR (%g) must beat unshielded single-ended (%g)", nDiff.SNR, nSE.SNR)
	}
	if nSE.SNR > 1 {
		t.Fatalf("unshielded 10%%-swing single-ended should fail noise closure (SNR %g)", nSE.SNR)
	}
	if nDiff.SNR < 1 {
		t.Fatalf("shielded differential should close (SNR %g)", nDiff.SNR)
	}
	// Shielding always helps.
	if se.Noise(true).SNR <= nSE.SNR {
		t.Fatalf("shielding must improve SNR")
	}
}

func TestRoutingTracks(t *testing.T) {
	diff := testLink(DifferentialLowSwing, 0.06)
	se := testLink(LowSwing, 0.06)
	if diff.RoutingTracks(false) != 2 || se.RoutingTracks(false) != 1 {
		t.Fatalf("bare track counts wrong")
	}
	if diff.RoutingTracks(true) >= 2*se.RoutingTracks(true) {
		t.Fatalf("shield-amortized differential must cost less than 2× a shielded single-ended track")
	}
}

func TestCompareTrackRatioBelowTwo(t *testing.T) {
	cmp, err := Compare(wire.MustForNode(35, wire.Global), 5e-3, 0.6, 0.10, DifferentialLowSwing)
	if err != nil {
		t.Fatal(err)
	}
	if cmp.TrackRatio >= 2 {
		t.Fatalf("track ratio %.2f — the paper argues it stays below the naive 2×", cmp.TrackRatio)
	}
	if cmp.PeakCurrentRatio >= 0.2 {
		t.Fatalf("di/dt relief too weak: %g", cmp.PeakCurrentRatio)
	}
}

func TestCompareValidates(t *testing.T) {
	if _, err := Compare(wire.MustForNode(50, wire.Global), -1, 0.6, 0.1, LowSwing); err == nil {
		t.Fatalf("invalid length must error")
	}
	if _, err := Compare(wire.MustForNode(50, wire.Global), 1e-3, 0.6, 1.5, LowSwing); err == nil {
		t.Fatalf("swing above Vdd must error")
	}
}

func TestAcrossRoadmapEnergyRatioStable(t *testing.T) {
	// The relative benefit of 10 % swing holds at every node.
	for _, nm := range itrs.Nodes() {
		node := itrs.MustNode(nm)
		cmp, err := Compare(wire.MustForNode(nm, wire.Global), 5e-3, node.Vdd, 0.10, DifferentialLowSwing)
		if err != nil {
			t.Fatalf("%d nm: %v", nm, err)
		}
		if cmp.EnergyRatio < 0.15 || cmp.EnergyRatio > 0.35 {
			t.Errorf("%d nm: energy ratio %.2f out of band", nm, cmp.EnergyRatio)
		}
	}
}

func TestSchemeString(t *testing.T) {
	for _, s := range []Scheme{FullSwingRepeated, LowSwing, DifferentialLowSwing} {
		if s.String() == "" {
			t.Fatalf("empty scheme name")
		}
	}
}
