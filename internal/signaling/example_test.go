package signaling_test

import (
	"fmt"

	"nanometer/internal/signaling"
	"nanometer/internal/wire"
)

// The Alpha-21264-style comparison of §2.2: a differential 10 %-swing link
// against full-swing repeated CMOS on the same global route.
func ExampleCompare() {
	line := wire.MustForNode(50, wire.Global)
	cmp, err := signaling.Compare(line, 6e-3, 0.6, 0.10, signaling.DifferentialLowSwing)
	if err != nil {
		panic(err)
	}
	fmt.Printf("energy ×%.2f, tracks ×%.2f, noise closes: %v\n",
		cmp.EnergyRatio, cmp.TrackRatio, cmp.AltSNR > 1)
	// Output:
	// energy ×0.23, tracks ×1.25, noise closes: true
}

// The tolerable-swing study the paper calls for: the minimum swing that
// closes SNR 2 on a shielded differential route undercuts the Alpha's 10 %.
func ExampleStudySwing() {
	line := wire.MustForNode(50, wire.Global)
	st, err := signaling.StudySwing(line, 6e-3, 0.6, signaling.DifferentialLowSwing, true, 2)
	if err != nil {
		panic(err)
	}
	fmt.Printf("min swing %.1f%% of Vdd; 10%% swing closes: %v\n",
		st.MinSwingFrac*100, st.AlphaSwingOK)
	// Output:
	// min swing 6.8% of Vdd; 10% swing closes: true
}
