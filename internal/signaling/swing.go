package signaling

import (
	"fmt"

	"nanometer/internal/mathx"
	"nanometer/internal/wire"
)

// The paper closes its §2.2 low-swing discussion with "further study is
// necessary to determine worst-case noise behavior and tolerable voltage
// swings". This file is that study: given the coupling environment, find
// the minimum swing that still closes noise with margin, and the energy
// that optimal swing costs.

// SwingStudy reports the tolerable-swing analysis for one scheme on one
// route.
type SwingStudy struct {
	Scheme Scheme
	// Shielded records the assumed shielding.
	Shielded bool
	// Feasible reports whether any swing up to the full rail closes the
	// SNR target; when false, MinSwingFrac and EnergyRatioAtMin are zero.
	Feasible bool
	// MinSwingFrac is the smallest swing (fraction of Vdd) with
	// SNR ≥ RequiredSNR against a full-swing aggressor.
	MinSwingFrac float64
	// RequiredSNR is the margin target used.
	RequiredSNR float64
	// EnergyRatioAtMin is the energy of the link at the minimum swing,
	// relative to full-swing signaling on the same route.
	EnergyRatioAtMin float64
	// AlphaSwingOK reports whether the Alpha-21264-style 10 % swing
	// clears the requirement in this environment.
	AlphaSwingOK bool
}

// MinTolerableSwing returns the smallest swing fraction at which the link
// closes noise with the given SNR against a full-swing neighbor. Noise is
// swing-independent (it is set by the aggressor), so the requirement is
// linear in swing: swing/2 ≥ snr·noise.
func MinTolerableSwing(line wire.Line, vdd float64, scheme Scheme, shielded bool, requiredSNR float64) (float64, error) {
	if requiredSNR <= 0 {
		return 0, fmt.Errorf("signaling: non-positive SNR target %g", requiredSNR)
	}
	if scheme == FullSwingRepeated {
		return 1, nil
	}
	probe := Link{Scheme: scheme, Line: line, LengthM: 1e-3, Vdd: vdd, SwingV: 0.5 * vdd}
	noise := probe.Noise(shielded).CouplingNoiseV
	minSwing := 2 * requiredSNR * noise / vdd
	if minSwing > 1 {
		return 0, fmt.Errorf("signaling: %v cannot close SNR %g even at full swing (noise %.3g V)",
			scheme, requiredSNR, noise)
	}
	return mathx.Clamp(minSwing, 0.01, 1), nil
}

// StudySwing runs the tolerable-swing analysis for a scheme on a route. An
// environment where no swing closes the target is reported with Feasible =
// false rather than an error — that outcome ("shielding may be insufficient")
// is itself a finding of the study.
func StudySwing(line wire.Line, lengthM, vdd float64, scheme Scheme, shielded bool, requiredSNR float64) (SwingStudy, error) {
	if requiredSNR <= 0 {
		return SwingStudy{}, fmt.Errorf("signaling: non-positive SNR target %g", requiredSNR)
	}
	st := SwingStudy{
		Scheme:      scheme,
		Shielded:    shielded,
		RequiredSNR: requiredSNR,
	}
	alpha := Link{Scheme: scheme, Line: line, LengthM: lengthM, Vdd: vdd, SwingV: 0.10 * vdd}
	if scheme == FullSwingRepeated {
		alpha.SwingV = 0
	}
	st.AlphaSwingOK = alpha.Noise(shielded).SNR >= requiredSNR
	minFrac, err := MinTolerableSwing(line, vdd, scheme, shielded, requiredSNR)
	if err != nil {
		return st, nil // infeasible environment: Feasible stays false
	}
	st.Feasible = true
	st.MinSwingFrac = minFrac
	base := Link{Scheme: FullSwingRepeated, Line: line, LengthM: lengthM, Vdd: vdd}
	at := Link{Scheme: scheme, Line: line, LengthM: lengthM, Vdd: vdd, SwingV: minFrac * vdd}
	if err := at.Validate(); err != nil {
		return SwingStudy{}, err
	}
	st.EnergyRatioAtMin = at.EnergyPerTransition() / base.EnergyPerTransition()
	return st, nil
}
