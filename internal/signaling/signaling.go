// Package signaling models the alternative global-signaling strategies of
// the paper's §2.2: reduced-swing and differential drivers and receivers,
// their energy, delay, noise behaviour, and routing-area cost, against the
// full-swing repeated-CMOS baseline of internal/repeater. The Alpha 21264's
// differential low-swing buses (swing limited to 10 % of Vdd) are the
// reference design point.
package signaling

import (
	"fmt"
	"math"

	"nanometer/internal/wire"
)

// Scheme identifies a global signaling strategy.
type Scheme int

const (
	// FullSwingRepeated is the conventional repeated CMOS baseline.
	FullSwingRepeated Scheme = iota
	// LowSwing is single-ended reduced-swing signaling.
	LowSwing
	// DifferentialLowSwing is the Alpha-21264-style twisted/shielded
	// differential pair with a sense-amplifier receiver.
	DifferentialLowSwing
)

func (s Scheme) String() string {
	switch s {
	case FullSwingRepeated:
		return "full-swing repeated CMOS"
	case LowSwing:
		return "low-swing single-ended"
	case DifferentialLowSwing:
		return "differential low-swing"
	}
	return fmt.Sprintf("Scheme(%d)", int(s))
}

// Link describes one global signaling link to evaluate.
type Link struct {
	Scheme Scheme
	// Line is the wire model (per conductor).
	Line wire.Line
	// LengthM is the route length.
	LengthM float64
	// Vdd is the full supply; SwingV the signal swing (ignored, treated as
	// Vdd, for FullSwingRepeated).
	Vdd    float64
	SwingV float64
	// DriverCurrentA is the driver's sink/source capability; it sets the
	// swing-limited delay. Zero selects a default sized for ~1 mA.
	DriverCurrentA float64
	// ReceiverEnergyJ is the sense-amp energy per transition; zero selects
	// a default of 15 fJ (differential) / 8 fJ (single-ended low swing).
	ReceiverEnergyJ float64
	// ReceiverStaticW is the receiver bias power; zero selects 20 µW for
	// differential sense amps, 0 otherwise.
	ReceiverStaticW float64
}

// Validate reports structurally invalid links.
func (l *Link) Validate() error {
	if l.LengthM <= 0 {
		return fmt.Errorf("signaling: non-positive length %g", l.LengthM)
	}
	if l.Vdd <= 0 {
		return fmt.Errorf("signaling: non-positive Vdd %g", l.Vdd)
	}
	if l.Scheme != FullSwingRepeated && (l.SwingV <= 0 || l.SwingV > l.Vdd) {
		return fmt.Errorf("signaling: swing %g outside (0, Vdd=%g]", l.SwingV, l.Vdd)
	}
	return nil
}

func (l *Link) driverCurrent() float64 {
	if l.DriverCurrentA > 0 {
		return l.DriverCurrentA
	}
	return 1e-3
}

func (l *Link) receiverEnergy() float64 {
	if l.ReceiverEnergyJ > 0 {
		return l.ReceiverEnergyJ
	}
	switch l.Scheme {
	case DifferentialLowSwing:
		return 15e-15
	case LowSwing:
		return 8e-15
	}
	return 0
}

func (l *Link) receiverStatic() float64 {
	if l.ReceiverStaticW > 0 {
		return l.ReceiverStaticW
	}
	if l.Scheme == DifferentialLowSwing {
		return 20e-6
	}
	return 0
}

func (l *Link) wires() float64 {
	if l.Scheme == DifferentialLowSwing {
		return 2
	}
	return 1
}

// EnergyPerTransition returns the energy drawn from the Vdd rail per signal
// transition. Reduced-swing wires charged from the full rail draw
// C·Vswing·Vdd per transition (charge C·Vswing delivered at potential Vdd);
// differential signaling switches both conductors.
func (l *Link) EnergyPerTransition() float64 {
	c := l.Line.CPerM() * l.LengthM * l.wires()
	swing := l.SwingV
	if l.Scheme == FullSwingRepeated {
		swing = l.Vdd
	}
	return c*swing*l.Vdd + l.receiverEnergy()
}

// Power returns average link power at the given toggle rate (transitions/s).
func (l *Link) Power(toggleHz float64) float64 {
	return l.EnergyPerTransition()*toggleHz + l.receiverStatic()
}

// Delay returns the signaling delay: the driver slew to develop the swing
// across the wire capacitance, plus the distributed-RC diffusion time for
// the far end to cross the detection threshold. A reduced-swing receiver
// fires early on the diffusion curve — the dominant-pole far-end response
// v(t) ≈ 1 − 1.131·exp(−2.467·t/RC) gives the familiar 0.38·RC at 50 % but
// only ≈0.09·RC at 10 % — which is what makes unrepeated low-swing links
// competitive on latency-tolerant routes.
func (l *Link) Delay() float64 {
	c := l.Line.CPerM() * l.LengthM * l.wires()
	swing := l.SwingV
	detect := 0.5 // full-swing CMOS switches near half rail
	if l.Scheme != FullSwingRepeated {
		// The sense amp resolves at half the (small) swing of the full-rail
		// final value.
		detect = l.SwingV / l.Vdd / 2
	} else {
		swing = l.Vdd
	}
	slew := c * swing / l.driverCurrent()
	rc := l.Line.RPerM() * l.Line.CPerM() * l.LengthM * l.LengthM
	diffusion := rc / 2.467 * math.Log(1.131/(1-detect))
	return slew + diffusion
}

// PeakSupplyCurrent returns the worst-case instantaneous current the link
// demands from the power grid — the di/dt driver the paper credits
// low-swing signaling with taming. Modeled as the driver current for
// reduced-swing schemes and the full-swing slew current for repeated CMOS.
func (l *Link) PeakSupplyCurrent(edgeRateS float64) float64 {
	if l.Scheme == FullSwingRepeated {
		c := l.Line.CPerM() * l.LengthM
		if edgeRateS <= 0 {
			edgeRateS = 50e-12
		}
		return c * l.Vdd / edgeRateS
	}
	return l.driverCurrent()
}

// Noise analysis --------------------------------------------------------------

// NoiseBudget summarizes coupling noise seen at the receiver.
type NoiseBudget struct {
	// CouplingNoiseV is the peak capacitive coupling noise from a
	// same-swing aggressor on an adjacent track.
	CouplingNoiseV float64
	// MarginV is the available noise margin.
	MarginV float64
	// SNR is margin over noise; > 1 means the link closes.
	SNR float64
}

// DifferentialRejection is the fraction of coupled noise that survives
// common-mode rejection on a shielded differential pair (both conductors
// see nearly the same aggressor).
const DifferentialRejection = 0.15

// ShieldAttenuation is the coupling attenuation a grounded shield wire
// provides to a single-ended line.
const ShieldAttenuation = 0.25

// Noise evaluates the link against a full-swing aggressor on the adjacent
// track, optionally shielded.
func (l *Link) Noise(shielded bool) NoiseBudget {
	kc := l.Line.CouplingFraction
	aggressorSwing := l.Vdd // neighbors are full-swing CMOS in the worst case
	noise := kc * aggressorSwing
	if shielded {
		noise *= ShieldAttenuation
	}
	var margin float64
	switch l.Scheme {
	case FullSwingRepeated:
		margin = l.Vdd / 2 * 0.8 // static CMOS gate threshold margin
	case LowSwing:
		margin = l.SwingV / 2
	case DifferentialLowSwing:
		noise *= DifferentialRejection
		margin = l.SwingV / 2
	}
	snr := math.Inf(1)
	if noise > 0 {
		snr = margin / noise
	}
	return NoiseBudget{CouplingNoiseV: noise, MarginV: margin, SNR: snr}
}

// RoutingTracks returns the number of routing tracks the link occupies,
// including shields. Differential pairs reuse the shield between adjacent
// buses, so the factor is below the naive 2× — the paper's observation that
// "the increase may be less than the expected factor of 2".
func (l *Link) RoutingTracks(shielded bool) float64 {
	switch l.Scheme {
	case DifferentialLowSwing:
		if shielded {
			return 2.5 // two signal tracks sharing shields with neighbors
		}
		return 2
	default:
		if shielded {
			return 2 // signal + dedicated shield
		}
		return 1
	}
}

// Comparison ------------------------------------------------------------------

// Comparison contrasts an alternative scheme with the full-swing baseline on
// the same route.
type Comparison struct {
	Baseline, Alternative Link
	// EnergyRatio = alternative / baseline energy per transition.
	EnergyRatio float64
	// PeakCurrentRatio = alternative / baseline peak grid current.
	PeakCurrentRatio float64
	// TrackRatio = alternative / baseline routing tracks.
	TrackRatio float64
	// AltSNR and BaseSNR are the respective noise closures (shielded
	// alternative vs unshielded baseline).
	AltSNR, BaseSNR float64
}

// Compare evaluates scheme vs the full-swing baseline on the same wire and
// length at swing·Vdd signal swing.
func Compare(line wire.Line, lengthM, vdd, swingFrac float64, scheme Scheme) (Comparison, error) {
	base := Link{Scheme: FullSwingRepeated, Line: line, LengthM: lengthM, Vdd: vdd}
	alt := Link{Scheme: scheme, Line: line, LengthM: lengthM, Vdd: vdd, SwingV: swingFrac * vdd}
	if err := base.Validate(); err != nil {
		return Comparison{}, err
	}
	if err := alt.Validate(); err != nil {
		return Comparison{}, err
	}
	// Long global lines need shield tracks in the single-ended baseline
	// too, which is why the differential pair costs less than the naive
	// 2× in routing (the paper's §2.2 observation).
	return Comparison{
		Baseline:         base,
		Alternative:      alt,
		EnergyRatio:      alt.EnergyPerTransition() / base.EnergyPerTransition(),
		PeakCurrentRatio: alt.PeakSupplyCurrent(0) / base.PeakSupplyCurrent(0),
		TrackRatio:       alt.RoutingTracks(true) / base.RoutingTracks(true),
		AltSNR:           alt.Noise(true).SNR,
		BaseSNR:          base.Noise(false).SNR,
	}, nil
}
