package signaling

import (
	"testing"

	"nanometer/internal/itrs"
	"nanometer/internal/wire"
)

func TestMinTolerableSwingOrdering(t *testing.T) {
	line := wire.MustForNode(35, wire.Global)
	const vdd = 0.6
	const snr = 2.0
	// Differential (common-mode rejection) tolerates a smaller swing than
	// single-ended, and shielding lowers both.
	diffSh, err := MinTolerableSwing(line, vdd, DifferentialLowSwing, true, snr)
	if err != nil {
		t.Fatal(err)
	}
	seSh, err := MinTolerableSwing(line, vdd, LowSwing, true, snr)
	if err != nil {
		t.Fatal(err)
	}
	if diffSh >= seSh {
		t.Fatalf("differential must tolerate a smaller swing: %g vs %g", diffSh, seSh)
	}
	diffBare, err := MinTolerableSwing(line, vdd, DifferentialLowSwing, false, snr)
	if err != nil {
		t.Fatal(err)
	}
	if diffSh >= diffBare {
		t.Fatalf("shielding must lower the tolerable swing: %g vs %g", diffSh, diffBare)
	}
	// Full swing trivially closes.
	if fs, err := MinTolerableSwing(line, vdd, FullSwingRepeated, false, snr); err != nil || fs != 1 {
		t.Fatalf("full swing: %g, %v", fs, err)
	}
}

func TestMinTolerableSwingInfeasible(t *testing.T) {
	line := wire.MustForNode(35, wire.Global)
	// An absurd SNR target on an unshielded single-ended line cannot close.
	if _, err := MinTolerableSwing(line, 0.6, LowSwing, false, 50); err == nil {
		t.Fatalf("impossible target must error")
	}
	if _, err := MinTolerableSwing(line, 0.6, LowSwing, true, 0); err == nil {
		t.Fatalf("non-positive SNR must error")
	}
}

func TestStudySwingAlphaDesignPoint(t *testing.T) {
	// The study the paper calls for: is the Alpha's 10 % swing tolerable?
	// On a shielded differential bus it is; unshielded single-ended it is
	// not.
	line := wire.MustForNode(50, wire.Global)
	node := itrs.MustNode(50)
	stDiff, err := StudySwing(line, 6e-3, node.Vdd, DifferentialLowSwing, true, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !stDiff.AlphaSwingOK {
		t.Fatalf("the Alpha-style shielded differential 10%% swing should close at SNR 2 (min %.3f)",
			stDiff.MinSwingFrac)
	}
	if stDiff.MinSwingFrac > 0.10 {
		t.Fatalf("min tolerable swing %.3f exceeds the Alpha point", stDiff.MinSwingFrac)
	}
	// Energy at the minimum tolerable swing undercuts the 10 % design.
	if stDiff.EnergyRatioAtMin >= 0.25 {
		t.Fatalf("energy at the noise-limited swing = %.2f of full swing, expected below the 10%% design", stDiff.EnergyRatioAtMin)
	}
	stSE, err := StudySwing(line, 6e-3, node.Vdd, LowSwing, false, 2)
	if err != nil {
		t.Fatal(err)
	}
	if stSE.AlphaSwingOK {
		t.Fatalf("unshielded single-ended 10%% swing should fail the same target")
	}
	if stSE.Feasible {
		t.Fatalf("no single-ended unshielded swing should close SNR 2 in this coupling environment")
	}
	if !stDiff.Feasible {
		t.Fatalf("the shielded differential study must be feasible")
	}
}

func TestStudySwingAcrossNodes(t *testing.T) {
	// The tolerable swing is set by the coupling fraction, which we hold
	// constant across nodes — the study should be stable on every node.
	for _, nm := range itrs.Nodes() {
		node := itrs.MustNode(nm)
		st, err := StudySwing(wire.MustForNode(nm, wire.Global), 5e-3, node.Vdd, DifferentialLowSwing, true, 2)
		if err != nil {
			t.Fatalf("%d nm: %v", nm, err)
		}
		if st.MinSwingFrac <= 0 || st.MinSwingFrac > 0.2 {
			t.Errorf("%d nm: min swing %.3f out of the expected band", nm, st.MinSwingFrac)
		}
	}
}
