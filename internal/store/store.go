// Package store is the disk-backed, content-addressed result store behind
// the in-memory compute cache: compute key → encoded JSON result, one file
// per key. It is what lets a restarted daemon (or a sibling replica
// pointed at the same directory) serve its first request without running a
// solver — the result types round-trip through encoding/json losslessly,
// so a store-served artifact encodes byte-identical to a freshly computed
// one.
//
// The format is deliberately boring: a one-line header carrying a format
// tag, an FNV-64a checksum, and the payload length, followed by the
// compact JSON of the result. Writes go to a temp file in the same
// directory and are renamed into place, so readers never observe a torn
// file; reads verify the checksum and length and treat any mismatch as a
// miss, deleting the corrupt file so it cannot fail again. Entry and byte
// bounds are enforced after each write by evicting the oldest files
// (modification time, then name), which makes the store safe to leave
// running forever.
//
// Every operation is best-effort by contract (repro.ResultStore): a
// failure degrades to a miss or a dropped write, counted in Stats, never
// an error — the caller can always solve locally.
package store

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/fnv"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"nanometer/internal/result"
)

// header tags the on-disk format; bump it when the layout changes so old
// files read as corrupt (= miss + delete) instead of misparsing.
const header = "nanostore1"

// Defaults for the bounds when Config leaves them zero.
const (
	DefaultMaxEntries = 4096
	DefaultMaxBytes   = 256 << 20
)

// Config parameterizes Open.
type Config struct {
	// Dir is the store directory, created if absent.
	Dir string
	// MaxEntries bounds the number of result files (≤0 selects
	// DefaultMaxEntries). Oldest entries are evicted past the bound.
	MaxEntries int
	// MaxBytes bounds the total payload bytes on disk (≤0 selects
	// DefaultMaxBytes).
	MaxBytes int64
}

// Store is a disk-backed result store. Safe for concurrent use by any
// number of goroutines and — because writes are atomic renames and reads
// are checksummed — by any number of replica processes sharing Dir.
type Store struct {
	dir        string
	maxEntries int
	maxBytes   int64

	// mu serializes writes and evictions within this process; readers
	// don't take it (rename atomicity protects them).
	mu sync.Mutex

	hits, misses, puts, putErrors, evictions, corrupt atomic.Uint64
}

// Stats is a point-in-time snapshot of one store handle's counters plus
// the directory's current footprint.
type Stats struct {
	// Hits/Misses count Get outcomes; Puts counts completed writes,
	// PutErrors writes dropped on error; Evictions counts files removed
	// by the bounds; Corrupt counts files dropped on checksum/decode
	// failure.
	Hits, Misses, Puts, PutErrors, Evictions, Corrupt uint64
	// Entries and Bytes describe the directory right now (shared across
	// replicas, so they can move without this handle doing anything).
	Entries int
	Bytes   int64
}

// Open creates (if needed) and validates the store directory.
func Open(cfg Config) (*Store, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("store: empty directory")
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	s := &Store{dir: cfg.Dir, maxEntries: cfg.MaxEntries, maxBytes: cfg.MaxBytes}
	if s.maxEntries <= 0 {
		s.maxEntries = DefaultMaxEntries
	}
	if s.maxBytes <= 0 {
		s.maxBytes = DefaultMaxBytes
	}
	return s, nil
}

// Dir returns the store directory.
func (s *Store) Dir() string { return s.dir }

// fileName maps (artifact, compute key) onto a flat, filesystem-safe name.
// IDs and keys are lowercase alphanumerics today; anything else is defanged
// by hashing so a hostile ID can never escape the directory.
func fileName(artifactID, computeKey string) string {
	safe := func(v string) string {
		for _, r := range v {
			if (r < 'a' || r > 'z') && (r < 'A' || r > 'Z') && (r < '0' || r > '9') {
				h := fnv.New64a()
				h.Write([]byte(v))
				return strconv.FormatUint(h.Sum64(), 16)
			}
		}
		return v
	}
	return safe(artifactID) + "-" + safe(computeKey) + ".json"
}

// Get returns the stored result for the key, or a miss. Corrupt or
// unreadable files count as misses and are removed.
func (s *Store) Get(artifactID, computeKey string) (*result.Result, bool) {
	path := filepath.Join(s.dir, fileName(artifactID, computeKey))
	raw, err := os.ReadFile(path)
	if err != nil {
		s.misses.Add(1)
		return nil, false
	}
	res, err := decode(raw, artifactID)
	if err != nil {
		s.corrupt.Add(1)
		s.misses.Add(1)
		os.Remove(path)
		return nil, false
	}
	s.hits.Add(1)
	return res, true
}

// Put persists a result under the key: temp file, fsync-free write, atomic
// rename, then bound enforcement. Failures are counted and swallowed.
func (s *Store) Put(artifactID, computeKey string, res *result.Result) {
	payload, err := json.Marshal(res)
	if err != nil {
		s.putErrors.Add(1)
		return
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "%s %s %d\n", header, checksum(payload), len(payload))
	buf.Write(payload)

	s.mu.Lock()
	defer s.mu.Unlock()
	tmp, err := os.CreateTemp(s.dir, ".put-*")
	if err != nil {
		s.putErrors.Add(1)
		return
	}
	_, werr := tmp.Write(buf.Bytes())
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return
	}
	if err := os.Rename(tmp.Name(), filepath.Join(s.dir, fileName(artifactID, computeKey))); err != nil {
		os.Remove(tmp.Name())
		s.putErrors.Add(1)
		return
	}
	s.puts.Add(1)
	s.enforceBoundsLocked()
}

func checksum(payload []byte) string {
	h := fnv.New64a()
	h.Write(payload)
	return strconv.FormatUint(h.Sum64(), 16)
}

// decode parses and verifies one store file.
func decode(raw []byte, artifactID string) (*result.Result, error) {
	nl := bytes.IndexByte(raw, '\n')
	if nl < 0 {
		return nil, fmt.Errorf("store: missing header line")
	}
	fields := strings.Fields(string(raw[:nl]))
	if len(fields) != 3 || fields[0] != header {
		return nil, fmt.Errorf("store: bad header")
	}
	payload := raw[nl+1:]
	n, err := strconv.Atoi(fields[2])
	if err != nil || n != len(payload) {
		return nil, fmt.Errorf("store: length mismatch")
	}
	if fields[1] != checksum(payload) {
		return nil, fmt.Errorf("store: checksum mismatch")
	}
	// Strict decode: a file written by a future schema (extra fields) or
	// carrying trailing bytes is a corrupt entry — miss and recompute —
	// never a silently truncated result.
	var res result.Result
	dec := json.NewDecoder(bytes.NewReader(payload))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&res); err != nil {
		return nil, fmt.Errorf("store: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("store: trailing data after result")
	}
	if err := res.Validate(); err != nil {
		return nil, err
	}
	if res.ID != artifactID {
		return nil, fmt.Errorf("store: result ID %q under key for %q", res.ID, artifactID)
	}
	return &res, nil
}

// entry is one result file during a bounds scan.
type entry struct {
	name  string
	size  int64
	mtime int64 // ns; tie-broken by name for determinism
}

// scan lists the store's result files (temp files excluded).
func (s *Store) scan() ([]entry, int64) {
	des, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, 0
	}
	var entries []entry
	var total int64
	for _, de := range des {
		if de.IsDir() || !strings.HasSuffix(de.Name(), ".json") {
			continue
		}
		info, err := de.Info()
		if err != nil {
			continue
		}
		entries = append(entries, entry{name: de.Name(), size: info.Size(), mtime: info.ModTime().UnixNano()})
		total += info.Size()
	}
	return entries, total
}

// enforceBoundsLocked evicts oldest-first until the directory fits the
// entry and byte bounds. Caller holds mu.
func (s *Store) enforceBoundsLocked() {
	entries, total := s.scan()
	if len(entries) <= s.maxEntries && total <= s.maxBytes {
		return
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].mtime != entries[j].mtime {
			return entries[i].mtime < entries[j].mtime
		}
		return entries[i].name < entries[j].name
	})
	for i := 0; i < len(entries); i++ {
		if len(entries)-i <= s.maxEntries && total <= s.maxBytes {
			break
		}
		if os.Remove(filepath.Join(s.dir, entries[i].name)) == nil {
			s.evictions.Add(1)
		}
		total -= entries[i].size
	}
}

// Stats snapshots the counters and the directory footprint.
func (s *Store) Stats() Stats {
	entries, total := s.scan()
	return Stats{
		Hits:      s.hits.Load(),
		Misses:    s.misses.Load(),
		Puts:      s.puts.Load(),
		PutErrors: s.putErrors.Load(),
		Evictions: s.evictions.Load(),
		Corrupt:   s.corrupt.Load(),
		Entries:   len(entries),
		Bytes:     total,
	}
}
