package store

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"
	"time"

	"nanometer/internal/result"
)

func sample(id string) *result.Result {
	r := &result.Result{ID: id, Title: "sample " + id}
	r.AddTable(&result.Table{Title: "t", Headers: []string{"h1", "h2"}, Rows: [][]string{{"a", "b"}, {"c", "d"}}})
	r.AddClaim(&result.Claim{Findings: []result.Finding{{Key: "x", Value: 1.5, Unit: "ns"}}})
	return r
}

// frame wraps a payload in a valid store header (correct checksum and
// length), so damage tests can target the payload contents specifically.
func frame(payload []byte) []byte {
	var buf bytes.Buffer
	buf.WriteString(header + " " + checksum(payload) + " ")
	buf.WriteString(strconv.Itoa(len(payload)) + "\n")
	buf.Write(payload)
	return buf.Bytes()
}

func open(t *testing.T, cfg Config) *Store {
	t.Helper()
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	s, err := Open(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// TestRoundTrip: Put then Get returns a result whose JSON encoding is
// byte-identical to the original — the property the serving layer's
// "equal ETag ⇒ equal bytes across replicas" guarantee rests on.
func TestRoundTrip(t *testing.T) {
	s := open(t, Config{})
	want := sample("t2")
	s.Put("t2", "cafe", want)
	got, ok := s.Get("t2", "cafe")
	if !ok {
		t.Fatal("Get missed a just-Put key")
	}
	wj, _ := json.Marshal(want)
	gj, _ := json.Marshal(got)
	if !bytes.Equal(wj, gj) {
		t.Fatalf("round-trip changed the result:\n want %s\n got  %s", wj, gj)
	}
	// A different compute key is a different entry.
	if _, ok := s.Get("t2", "beef"); ok {
		t.Fatal("Get hit under the wrong compute key")
	}
	st := s.Stats()
	if st.Puts != 1 || st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want puts=1 hits=1 misses=1 entries=1", st)
	}
}

// TestCorruptFallThrough: a damaged store file reads as a miss, is counted
// as corrupt, and is deleted so it cannot fail again.
func TestCorruptFallThrough(t *testing.T) {
	for name, damage := range map[string]func([]byte) []byte{
		"flipped-payload-byte": func(b []byte) []byte { b[len(b)-2] ^= 0x40; return b },
		"wrong-header":         func(b []byte) []byte { return append([]byte("nanostoreX junk\n"), b...) },
		"truncated":            func(b []byte) []byte { return b[:len(b)/2] },
		"wrong-artifact-id": func(b []byte) []byte {
			// A validly checksummed file holding another artifact's result
			// (e.g. a hash collision or a tampered rename) must not be
			// served under this key.
			other, _ := json.Marshal(sample("zz"))
			return frame(other)
		},
		"unknown-field": func(b []byte) []byte {
			// A validly checksummed file written by a future schema: the
			// strict decoder must treat the unknown field as corruption
			// (miss and recompute), not silently drop it.
			payload, _ := json.Marshal(sample("t2"))
			payload = append([]byte(`{"future_field":1,`), payload[1:]...)
			return frame(payload)
		},
		"trailing-data": func(b []byte) []byte {
			// A second JSON value after the result must not be ignored.
			payload, _ := json.Marshal(sample("t2"))
			return frame(append(payload, []byte("{}")...))
		},
	} {
		t.Run(name, func(t *testing.T) {
			s := open(t, Config{})
			s.Put("t2", "cafe", sample("t2"))
			path := filepath.Join(s.Dir(), fileName("t2", "cafe"))
			raw, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, damage(raw), 0o644); err != nil {
				t.Fatal(err)
			}
			if _, ok := s.Get("t2", "cafe"); ok {
				t.Fatal("Get served a corrupt file")
			}
			if st := s.Stats(); st.Corrupt != 1 {
				t.Fatalf("corrupt count = %d, want 1", st.Corrupt)
			}
			if _, err := os.Stat(path); !os.IsNotExist(err) {
				t.Fatal("corrupt file was not removed")
			}
			// The key works again after a fresh Put.
			s.Put("t2", "cafe", sample("t2"))
			if _, ok := s.Get("t2", "cafe"); !ok {
				t.Fatal("store broken after corrupt-file recovery")
			}
		})
	}
}

// TestEntryBound: past MaxEntries the oldest files are evicted, newest
// survive.
func TestEntryBound(t *testing.T) {
	s := open(t, Config{MaxEntries: 3})
	keys := []string{"k0", "k1", "k2", "k3", "k4"}
	for i, k := range keys {
		s.Put("t2", k, sample("t2"))
		// Distinct mtimes so oldest-first is deterministic regardless of
		// filesystem timestamp granularity.
		path := filepath.Join(s.Dir(), fileName("t2", k))
		ts := time.Now().Add(time.Duration(i-len(keys)) * time.Second)
		if err := os.Chtimes(path, ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	// Trigger one more enforcement pass with a fresh (newest) write.
	s.Put("t2", "k5", sample("t2"))
	st := s.Stats()
	if st.Entries > 3 {
		t.Fatalf("entries = %d, bound is 3", st.Entries)
	}
	if st.Evictions == 0 {
		t.Fatal("no evictions counted past the bound")
	}
	if _, ok := s.Get("t2", "k5"); !ok {
		t.Fatal("newest entry was evicted")
	}
	if _, ok := s.Get("t2", "k0"); ok {
		t.Fatal("oldest entry survived past the bound")
	}
}

// TestByteBound: the byte bound evicts even when the entry count is fine.
func TestByteBound(t *testing.T) {
	probe := open(t, Config{})
	probe.Put("t2", "probe", sample("t2"))
	size := probe.Stats().Bytes

	s := open(t, Config{MaxBytes: 2*size + size/2})
	for i, k := range []string{"b0", "b1", "b2", "b3"} {
		s.Put("t2", k, sample("t2"))
		path := filepath.Join(s.Dir(), fileName("t2", k))
		ts := time.Now().Add(time.Duration(i-8) * time.Second)
		if err := os.Chtimes(path, ts, ts); err != nil {
			t.Fatal(err)
		}
	}
	s.Put("t2", "b4", sample("t2"))
	st := s.Stats()
	if st.Bytes > 2*size+size/2 {
		t.Fatalf("bytes = %d, bound is %d", st.Bytes, 2*size+size/2)
	}
	if _, ok := s.Get("t2", "b4"); !ok {
		t.Fatal("newest entry was evicted by the byte bound")
	}
}

// TestHostileKeyStaysInside: path-hostile artifact IDs are defanged by
// hashing — no file lands outside the store directory.
func TestHostileKeyStaysInside(t *testing.T) {
	parent := t.TempDir()
	dir := filepath.Join(parent, "store")
	s := open(t, Config{Dir: dir})
	s.Put("../escape", "k/../..", sample("../escape"))
	des, err := os.ReadDir(parent)
	if err != nil {
		t.Fatal(err)
	}
	if len(des) != 1 || des[0].Name() != "store" {
		t.Fatalf("hostile key wrote outside the store dir: %v", des)
	}
	// The hostile key still round-trips (under its hashed name).
	if _, ok := s.Get("../escape", "k/../.."); !ok {
		t.Fatal("hostile key did not round-trip")
	}
}

// TestSharedDirectory: two handles over one directory see each other's
// writes — the multi-replica warming contract.
func TestSharedDirectory(t *testing.T) {
	dir := t.TempDir()
	a := open(t, Config{Dir: dir})
	b := open(t, Config{Dir: dir})
	a.Put("t2", "cafe", sample("t2"))
	if _, ok := b.Get("t2", "cafe"); !ok {
		t.Fatal("sibling handle missed the shared write")
	}
}
