// Package power analyzes netlist power: signal-probability and activity
// propagation through the logic, per-gate dynamic and leakage power, and
// totals broken down by supply and threshold class — the accounting the
// paper's CVS / dual-Vth / re-sizing comparisons need.
package power

import (
	"nanometer/internal/gate"
	"nanometer/internal/netlist"
)

// Report is a power breakdown of one circuit.
type Report struct {
	// DynamicW and LeakageW are the totals.
	DynamicW, LeakageW float64
	// LevelConverterW is the dynamic power consumed by low-to-high supply
	// converters, included in DynamicW.
	LevelConverterW float64
	// ByVddDynamicW[i] is the dynamic power drawn from supply class i.
	ByVddDynamicW []float64
	// ByVthLeakageW[i] is the leakage of threshold class i.
	ByVthLeakageW []float64
	// GateDynamicW / GateLeakageW are per-gate values.
	GateDynamicW, GateLeakageW []float64
	// ClockHz is the evaluation frequency.
	ClockHz float64
}

// TotalW returns dynamic + leakage power.
func (r *Report) TotalW() float64 { return r.DynamicW + r.LeakageW }

// PropagateActivity fills each gate's Prob and Activity fields from the
// primary-input activity, assuming input independence: signal probabilities
// compose through the gate function and the toggle rate follows the
// random-telegraph model 2·p·(1−p) scaled to the PI toggle density.
func PropagateActivity(c *netlist.Circuit) {
	piProb := 0.5
	// The PI toggle density relative to the maximum 2·p·(1−p) = 0.5.
	density := c.PIActivity / (2 * piProb * (1 - piProb))
	for i := range c.Gates {
		g := &c.Gates[i]
		// Probability that the output is 1.
		var p float64
		switch g.Kind {
		case gate.Inv:
			p = 1 - inputProb(c, g, 0)
		case gate.Nand:
			prod := 1.0
			for k := range g.Inputs {
				prod *= inputProb(c, g, k)
			}
			p = 1 - prod
		case gate.Nor:
			prod := 1.0
			for k := range g.Inputs {
				prod *= 1 - inputProb(c, g, k)
			}
			p = prod
		}
		g.Prob = p
		g.Activity = 2 * p * (1 - p) * density
	}
}

func inputProb(c *netlist.Circuit, g *netlist.Gate, k int) float64 {
	ref := g.Inputs[k]
	if _, ok := netlist.IsPI(ref); ok {
		return 0.5
	}
	return c.Gates[ref].Prob
}

// Analyze computes the power report at clock frequency fHz. Activities must
// have been propagated (Analyze calls PropagateActivity when every gate
// activity is zero).
func Analyze(c *netlist.Circuit, fHz float64) *Report {
	needsActivity := true
	for i := range c.Gates {
		if c.Gates[i].Activity != 0 {
			needsActivity = false
			break
		}
	}
	if needsActivity {
		PropagateActivity(c)
	}
	r := &Report{
		ByVddDynamicW: make([]float64, len(c.Tech.VddLevels)),
		ByVthLeakageW: make([]float64, len(c.Tech.VthLevels)),
		GateDynamicW:  make([]float64, len(c.Gates)),
		GateLeakageW:  make([]float64, len(c.Gates)),
		ClockHz:       fHz,
	}
	for i := range c.Gates {
		g := &c.Gates[i]
		load := c.LoadOn(g)
		e := c.Tech.CellEnergy(g.Kind, len(g.Inputs), g.VddClass, g.VthClass, g.Size, load)
		pd := g.Activity * fHz * e
		if g.NeedsLC {
			lcP := g.Activity * fHz * c.Tech.LevelConverterEnergyJ
			pd += lcP
			r.LevelConverterW += lcP
		}
		pl := c.Tech.CellLeakage(g.Kind, len(g.Inputs), g.VddClass, g.VthClass, g.Size)
		r.GateDynamicW[i] = pd
		r.GateLeakageW[i] = pl
		r.DynamicW += pd
		r.LeakageW += pl
		r.ByVddDynamicW[g.VddClass] += pd
		r.ByVthLeakageW[g.VthClass] += pl
	}
	return r
}

// AreaEstimate returns a relative area metric: total device width plus the
// level-converter and dual-rail overheads of multi-Vdd designs. The paper's
// reference point is ≈15 % area overhead for a CVS media processor.
type AreaEstimate struct {
	// CellArea is the summed drive strength (unit cells).
	CellArea float64
	// LCArea is the area of inserted level converters.
	LCArea float64
	// RailOverhead is the placement/power-routing overhead of carrying a
	// second supply, charged per low-Vdd cell.
	RailOverhead float64
}

// Total returns the total relative area.
func (a AreaEstimate) Total() float64 { return a.CellArea + a.LCArea + a.RailOverhead }

// EstimateArea computes the area model. lcUnits is the area of one level
// converter in unit cells (≈3); railFraction the per-low-Vdd-cell routing
// overhead (≈0.08).
func EstimateArea(c *netlist.Circuit, lcUnits, railFraction float64) AreaEstimate {
	var a AreaEstimate
	for i := range c.Gates {
		g := &c.Gates[i]
		a.CellArea += g.Size
		if g.NeedsLC {
			a.LCArea += lcUnits
		}
		if g.VddClass > 0 {
			a.RailOverhead += railFraction * g.Size
		}
	}
	return a
}
