package power

import (
	"math"
	"testing"

	"nanometer/internal/gate"
	"nanometer/internal/netlist"
	"nanometer/internal/units"
)

func genCircuit(t *testing.T, gates int, seed int64) *netlist.Circuit {
	t.Helper()
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = gates
	p.Seed = seed
	c, err := netlist.Generate(tech, p)
	if err != nil {
		t.Fatal(err)
	}
	c.ClockPeriodS = 1e-9
	return c
}

func TestActivityPropagationInverterChain(t *testing.T) {
	tech := netlist.MustNewTech(100, 0.65)
	c := &netlist.Circuit{Tech: tech, NumPIs: 1, PIActivity: 0.12}
	for i := 0; i < 4; i++ {
		in := netlist.PI(0)
		if i > 0 {
			in = i - 1
		}
		c.Gates = append(c.Gates, netlist.Gate{ID: i, Kind: gate.Inv, Inputs: []int{in}, Size: 2})
	}
	c.Rebuild()
	PropagateActivity(c)
	for i := range c.Gates {
		// An inverter chain from a p=0.5 input keeps p=0.5 and the PI
		// activity everywhere.
		if math.Abs(c.Gates[i].Prob-0.5) > 1e-12 {
			t.Fatalf("gate %d probability = %g, want 0.5", i, c.Gates[i].Prob)
		}
		if math.Abs(c.Gates[i].Activity-0.12) > 1e-12 {
			t.Fatalf("gate %d activity = %g, want 0.12", i, c.Gates[i].Activity)
		}
	}
}

func TestActivityPropagationNandNor(t *testing.T) {
	tech := netlist.MustNewTech(100, 0.65)
	c := &netlist.Circuit{Tech: tech, NumPIs: 2, PIActivity: 0.2}
	c.Gates = []netlist.Gate{
		{ID: 0, Kind: gate.Nand, Inputs: []int{netlist.PI(0), netlist.PI(1)}, Size: 2},
		{ID: 1, Kind: gate.Nor, Inputs: []int{netlist.PI(0), netlist.PI(1)}, Size: 2},
	}
	c.Rebuild()
	PropagateActivity(c)
	// NAND of two p=0.5 inputs: p = 1 − 0.25 = 0.75; NOR: p = 0.25.
	if math.Abs(c.Gates[0].Prob-0.75) > 1e-12 {
		t.Fatalf("NAND probability = %g, want 0.75", c.Gates[0].Prob)
	}
	if math.Abs(c.Gates[1].Prob-0.25) > 1e-12 {
		t.Fatalf("NOR probability = %g, want 0.25", c.Gates[1].Prob)
	}
	// Both have 2·p·(1−p) = 0.375 of the maximum toggle density; with PI
	// activity 0.2 (density 0.4) that is 0.15.
	for i := 0; i < 2; i++ {
		if math.Abs(c.Gates[i].Activity-0.15) > 1e-12 {
			t.Fatalf("gate %d activity = %g, want 0.15", i, c.Gates[i].Activity)
		}
	}
}

func TestAnalyzeTotalsArePartitioned(t *testing.T) {
	c := genCircuit(t, 600, 1)
	r := Analyze(c, 1e9)
	var dyn, leak float64
	for i := range c.Gates {
		dyn += r.GateDynamicW[i]
		leak += r.GateLeakageW[i]
	}
	if !units.ApproxEqual(dyn, r.DynamicW, 1e-9, 0) || !units.ApproxEqual(leak, r.LeakageW, 1e-9, 0) {
		t.Fatalf("per-gate sums do not match totals")
	}
	var byVdd float64
	for _, v := range r.ByVddDynamicW {
		byVdd += v
	}
	if !units.ApproxEqual(byVdd, r.DynamicW, 1e-9, 0) {
		t.Fatalf("per-supply partition does not sum to the dynamic total")
	}
	var byVth float64
	for _, v := range r.ByVthLeakageW {
		byVth += v
	}
	if !units.ApproxEqual(byVth, r.LeakageW, 1e-9, 0) {
		t.Fatalf("per-threshold partition does not sum to the leakage total")
	}
	if r.TotalW() != r.DynamicW+r.LeakageW {
		t.Fatalf("TotalW broken")
	}
	if r.DynamicW <= 0 || r.LeakageW <= 0 {
		t.Fatalf("both power components must be positive")
	}
}

func TestAnalyzeLinearInFrequency(t *testing.T) {
	c := genCircuit(t, 300, 2)
	r1 := Analyze(c, 1e9)
	r2 := Analyze(c, 2e9)
	if !units.ApproxEqual(r2.DynamicW, 2*r1.DynamicW, 1e-9, 0) {
		t.Fatalf("dynamic power must be linear in clock")
	}
	if !units.ApproxEqual(r2.LeakageW, r1.LeakageW, 1e-9, 0) {
		t.Fatalf("leakage must not depend on clock")
	}
}

func TestLevelConverterPowerCounted(t *testing.T) {
	c := genCircuit(t, 300, 3)
	base := Analyze(c, 1e9)
	if base.LevelConverterW != 0 {
		t.Fatalf("no LCs yet, power %g", base.LevelConverterW)
	}
	// Attach converters to some gates.
	n := 0
	for i := range c.Gates {
		if c.Gates[i].IsPO {
			c.Gates[i].NeedsLC = true
			c.Gates[i].VddClass = 1
			n++
		}
	}
	if n == 0 {
		t.Fatalf("no POs")
	}
	withLC := Analyze(c, 1e9)
	if withLC.LevelConverterW <= 0 {
		t.Fatalf("LC power must be counted")
	}
	if withLC.ByVddDynamicW[1] <= 0 {
		t.Fatalf("low-supply dynamic power must be attributed")
	}
}

func TestMovingGatesToLowVddCutsDynamic(t *testing.T) {
	c := genCircuit(t, 500, 4)
	before := Analyze(c, 1e9)
	for i := range c.Gates {
		c.Gates[i].VddClass = 1
	}
	after := Analyze(c, 1e9)
	ratio := after.DynamicW / before.DynamicW
	// Everything at 0.65·Vdd → quadratic 0.42 ratio.
	if !units.ApproxEqual(ratio, 0.65*0.65, 0.01, 0) {
		t.Fatalf("all-low dynamic ratio = %g, want ≈0.42", ratio)
	}
	// Leakage also falls at the lower rail (DIBL and V·I scaling).
	if after.LeakageW >= before.LeakageW {
		t.Fatalf("leakage must fall at the lower supply")
	}
}

func TestAreaEstimate(t *testing.T) {
	c := genCircuit(t, 200, 5)
	plain := EstimateArea(c, 2, 0.06)
	if plain.LCArea != 0 || plain.RailOverhead != 0 {
		t.Fatalf("no multi-Vdd overhead expected before assignment")
	}
	if plain.CellArea <= 0 || plain.Total() != plain.CellArea {
		t.Fatalf("cell area accounting broken")
	}
	c.Gates[0].VddClass = 1
	c.Gates[0].NeedsLC = true
	multi := EstimateArea(c, 2, 0.06)
	if multi.LCArea != 2 {
		t.Fatalf("LC area = %g, want 2", multi.LCArea)
	}
	if !units.ApproxEqual(multi.RailOverhead, 0.06*c.Gates[0].Size, 1e-9, 0) {
		t.Fatalf("rail overhead = %g", multi.RailOverhead)
	}
	if multi.Total() <= plain.Total() {
		t.Fatalf("multi-Vdd must cost area")
	}
}

func TestAnalyzeAutoPropagatesActivity(t *testing.T) {
	c := genCircuit(t, 100, 6)
	// Activities start zero; Analyze must fill them.
	r := Analyze(c, 1e9)
	if r.DynamicW <= 0 {
		t.Fatalf("auto-propagation failed")
	}
	nonZero := 0
	for i := range c.Gates {
		if c.Gates[i].Activity > 0 {
			nonZero++
		}
	}
	if nonZero < len(c.Gates)/2 {
		t.Fatalf("most gates should toggle, got %d of %d", nonZero, len(c.Gates))
	}
}
