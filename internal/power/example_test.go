package power_test

import (
	"fmt"

	"nanometer/internal/netlist"
	"nanometer/internal/power"
)

// Analyze a block's power and read the per-supply breakdown the multi-Vdd
// techniques act on.
func ExampleAnalyze() {
	tech := netlist.MustNewTech(100, 0.65)
	p := netlist.DefaultGenParams()
	p.Gates = 500
	p.Seed = 4
	c, err := netlist.Generate(tech, p)
	if err != nil {
		panic(err)
	}
	rep := power.Analyze(c, 2e9)
	fmt.Printf("dynamic and leakage both positive: %v; everything on Vdd,h before CVS: %v\n",
		rep.DynamicW > 0 && rep.LeakageW > 0,
		rep.ByVddDynamicW[1] == 0)
	// Output:
	// dynamic and leakage both positive: true; everything on Vdd,h before CVS: true
}
