# Verify/bench entry points. `make verify` is the PR gate: vet + build +
# the full test suite under the race detector (the parallel reproduction
# engine makes -race mandatory, not optional).

GO ?= go

.PHONY: all build test race vet lint lint-cross verify bench bench-all bench-mesh bench-cutoff bench-report serve bench-serve bench-replicas

all: verify

# The PR's committed benchmark evidence: run the solver/report benchmarks
# and write machine-readable numbers (ns/op, allocs/op, solver iterations,
# GOMAXPROCS) with the seed baseline embedded for before/after diffing.
# BENCH_CPU repeats the selection at each GOMAXPROCS so the serial and
# parallel numbers land as separate rows of one document. The HTTP load
# run appends the serving-layer numbers (throughput, latency percentiles,
# cache hit ratio) to the same output.
BENCH_OUT ?= BENCH_8.json
BENCH_BASELINE ?= bench_seed.json
BENCH_CPU ?= 1,4

bench:
	$(GO) run ./cmd/benchjson -out $(BENCH_OUT) -baseline $(BENCH_BASELINE) -cpu $(BENCH_CPU)
	$(MAKE) bench-serve
	$(MAKE) bench-replicas

# The HTTP daemon on :8077 (override: make serve ADDR=:9000).
ADDR ?= :8077
serve:
	$(GO) run ./cmd/nanoreprod -addr $(ADDR)

# Serving-layer load run: an in-process daemon, 200 requests across 8
# clients over the whole registry — prints throughput, latency
# percentiles, and the server's cache/gate counters.
bench-serve:
	$(GO) run ./cmd/nanoreprod -loadgen -requests 200 -concurrency 8

# Replica-scaling run: sweeps 1/2/4 in-process replicas over one shared
# result store (fresh compute cache and store per round) and pins the
# replicas × throughput × p99 table — plus the singleflight-collapse
# demonstration (16 identical mesh-n=255 requests → 1 solve) — to
# BENCH_REPLICAS_OUT.
BENCH_REPLICAS_OUT ?= BENCH_6.json
bench-replicas:
	$(GO) run ./cmd/nanoreprod -loadgen -replica-bench 1,2,4 -requests 200 -concurrency 16 -bench-out $(BENCH_REPLICAS_OUT)

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The project-specific static-analysis gate (internal/analyzers via
# cmd/nanolint): determinism of output-producing packages (detrange),
# the solver-error contract (solvecheck), compute-cache key coverage
# (cachekey), pooled-workspace discipline (poolescape), and the
# concurrency contracts of the serving era — lock-guarded fields
# (lockguard), context threading past blocking APIs (ctxflow), provable
# goroutine exits (goexit), strict bounded JSON decoding at API
# boundaries (strictjson), and bounded metric-label sets (metriclabel).
# Exit 1 on any finding, with the analyzer name in every line.
lint:
	$(GO) run ./cmd/nanolint ./...

# Cross-configuration lint: the loader resolves files through `go list`,
# which honors GOOS/GOFLAGS, so files hidden from the default
# configuration by build tags (the mg_rbgs red-black smoother) or by a
# GOOS constraint still pass through every analyzer. The nanolint binary
# itself runs on the host; only the package loading is cross-configured.
lint-cross:
	$(GO) build -o $(CURDIR)/bin/nanolint ./cmd/nanolint
	GOOS=darwin $(CURDIR)/bin/nanolint ./...
	GOFLAGS=-tags=mg_rbgs $(CURDIR)/bin/nanolint ./...

race:
	$(GO) test -race ./...

verify: vet build lint race

# All benchmarks: every artifact end to end + ablations + solver kernels +
# the parallel full-report speedup (bench_test.go), raw text output.
bench-all:
	$(GO) test -bench=. -run='^$$' -benchmem .

# The hot IR-drop kernel: seed-style allocating CG vs workspace CG vs
# Jacobi PCG vs the multigrid-preconditioned production path
# (powergrid.Mesh.Solve) at n = 63 and 255, the smoother ablation
# (Jacobi / red-black GS / Chebyshev ± FMG), and the 9-variant batched
# sweep vs independent solves.
bench-mesh:
	$(GO) test -bench='BenchmarkMeshSolve|BenchmarkSmoothers|BenchmarkSweepBatch' -run='^$$' -benchmem .

# The parallel-cutoff micro-benchmark behind mathx.parCutoff: serial axpy
# vs parForBlocks across the cutoff, at GOMAXPROCS 1 and 4.
bench-cutoff:
	$(GO) test -bench='BenchmarkParCutoff' -run='^$$' -cpu 1,4 ./internal/mathx

# Full-report wall clock at -jobs=1 vs -jobs=NumCPU.
bench-report:
	$(GO) test -bench='BenchmarkFullReport' -run='^$$' .
