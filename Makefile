# Verify/bench entry points. `make verify` is the PR gate: vet + build +
# the full test suite under the race detector (the parallel reproduction
# engine makes -race mandatory, not optional).

GO ?= go

.PHONY: all build test race vet verify bench bench-mesh bench-report

all: verify

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race ./...

verify: vet build race

# All benchmarks: every artifact end to end + ablations + solver kernels +
# the parallel full-report speedup (bench_test.go).
bench:
	$(GO) test -bench=. -run='^$$' -benchmem .

# The hot IR-drop kernel: seed-style allocating CG vs workspace CG (what
# powergrid.Mesh.Solve runs) vs Jacobi PCG.
bench-mesh:
	$(GO) test -bench='BenchmarkMeshSolve' -run='^$$' -benchmem .

# Full-report wall clock at -jobs=1 vs -jobs=NumCPU.
bench-report:
	$(GO) test -bench='BenchmarkFullReport' -run='^$$' .
